"""Multiple-source topologies via fictitious-source normalization.

The cost models require a unique source; the paper notes that "the
single source assumption can be circumvented by adding a fictitious
source operator in the topology linked to the real sources"
(Section 3.1) and lists multiple sources as future work (Section 7).
This module implements that normalization:

* a fictitious source is added whose generation rate is the sum of the
  real sources' rates;
* it routes to each real source with probability proportional to that
  source's rate, so each real source receives items at exactly its own
  generation rate and saturates independently;
* the real sources become ordinary operators whose service rate is
  their generation rate, preserving their throttling behaviour under
  backpressure.

The resulting topology satisfies every assumption of the analyses, and
the per-operator results of Algorithm 1/2/3 on it are meaningful for
the original multi-source application (the fictitious vertex costs
nothing and never bottlenecks first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.graph import Edge, OperatorSpec, StateKind, Topology, TopologyError
from repro.core.steady_state import SteadyStateResult, analyze

#: Default name of the added fictitious source vertex.
FICTITIOUS_SOURCE = "__source__"


@dataclass(frozen=True)
class MultiSourceTopology:
    """A normalized multi-source application.

    Attributes
    ----------
    topology:
        The single-source topology handed to the analyses.
    sources:
        The original source names with their generation rates.
    fictitious:
        Name of the added fictitious source vertex.
    """

    topology: Topology
    sources: Mapping[str, float]
    fictitious: str

    @property
    def total_rate(self) -> float:
        return sum(self.sources.values())

    def analyze(self, **kwargs) -> SteadyStateResult:
        """Steady-state analysis of the normalized topology."""
        return analyze(self.topology, **kwargs)

    def source_throughputs(
        self, analysis: Optional[SteadyStateResult] = None
    ) -> Dict[str, float]:
        """Per-source ingestion rates at steady state.

        This is the quantity a designer of a multi-source application
        actually cares about: how much of each input stream survives
        the backpressure.
        """
        if analysis is None:
            analysis = self.analyze()
        return {
            name: analysis.rates[name].departure_rate
            / self.topology.operator(name).gain
            if self.topology.operator(name).gain > 0.0 else 0.0
            for name in self.sources
        }


def merge_sources(
    operators: Iterable[OperatorSpec],
    edges: Iterable[Edge],
    source_rates: Mapping[str, float],
    name: str = "multi-source",
    fictitious_name: str = FICTITIOUS_SOURCE,
) -> MultiSourceTopology:
    """Normalize a multi-source application to a rooted topology.

    Parameters
    ----------
    operators:
        All operators, including the real sources (their declared
        service times are replaced by their generation intervals).
    edges:
        The application edges; the real sources must have no input
        edges.
    source_rates:
        Generation rate (items/sec) of each real source.
    """
    specs = {spec.name: spec for spec in operators}
    if not source_rates:
        raise TopologyError("source_rates must name at least one source")
    if fictitious_name in specs:
        raise TopologyError(
            f"operator name {fictitious_name!r} is reserved for the "
            "fictitious source"
        )
    edge_list = list(edges)
    targets_with_inputs = {edge.target for edge in edge_list}
    total_rate = 0.0
    for source, rate in source_rates.items():
        if source not in specs:
            raise TopologyError(f"unknown source operator {source!r}")
        if rate <= 0.0:
            raise TopologyError(
                f"source {source!r}: rate must be positive, got {rate}"
            )
        if source in targets_with_inputs:
            raise TopologyError(
                f"source {source!r} has input edges; it cannot be a source"
            )
        total_rate += rate

    # Real zero-in-degree vertices not declared as sources would break
    # the reachability requirement — surface that early and clearly.
    roots = set(specs) - targets_with_inputs
    undeclared = sorted(roots - set(source_rates))
    if undeclared:
        raise TopologyError(
            f"vertices without input edges must be declared as sources: "
            f"{undeclared}"
        )

    new_specs: List[OperatorSpec] = [
        OperatorSpec(
            name=fictitious_name,
            # The fictitious source generates the merged stream; it must
            # never be the binding constraint, so it is as fast as the
            # aggregate of the real sources.
            service_time=1.0 / total_rate,
            state=StateKind.STATELESS,
        )
    ]
    for spec in specs.values():
        if spec.name in source_rates:
            new_specs.append(OperatorSpec(
                name=spec.name,
                service_time=1.0 / source_rates[spec.name],
                state=spec.state,
                input_selectivity=spec.input_selectivity,
                output_selectivity=spec.output_selectivity,
                replication=spec.replication,
                keys=spec.keys,
                operator_class=spec.operator_class,
                operator_args=spec.operator_args,
            ))
        else:
            new_specs.append(spec)

    new_edges = list(edge_list)
    for source, rate in sorted(source_rates.items()):
        new_edges.append(Edge(fictitious_name, source, rate / total_rate))

    topology = Topology(new_specs, new_edges, name=name)
    return MultiSourceTopology(
        topology=topology,
        sources=dict(source_rates),
        fictitious=fictitious_name,
    )
