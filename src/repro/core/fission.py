"""Bottleneck elimination via operator fission (paper Algorithm 2).

The procedure visits the vertices in topological order, computing
arrival rates and utilization factors as in the steady-state analysis.
When a bottleneck is found it reacts according to the operator kind:

* **stateless** — replicate with the optimal degree ``ceil(rho)``
  (Definition 1), which removes the bottleneck exactly;
* **partitioned-stateful** — call the key-partitioning heuristic, which
  may fall short of perfect balance on skewed distributions; if the
  hottest replica is still overloaded, the residual bottleneck throttles
  the source (Theorem 3.2) and the visit restarts;
* **stateful** — fission is impossible; the source is throttled and the
  visit restarts.

A *hold-off* post-processing step (Section 3.2) caps the total number
of replicas at a user-provided bound by scaling every replication
degree with the ratio ``N_max / N`` and fixing rounding anomalies.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.graph import StateKind, Topology, TopologyError
from repro.core.partitioning import key_partitioning
from repro.core.solver import analyze_edit
from repro.core.steady_state import (
    RHO_TOLERANCE,
    SteadyStateResult,
)


@dataclass(frozen=True)
class FissionDecision:
    """Why an operator received its replication degree."""

    name: str
    state: StateKind
    utilization_before: float
    optimal_replicas: int
    replicas: int
    p_max: float
    removed: bool

    @property
    def was_bottleneck(self) -> bool:
        return self.utilization_before > 1.0 + RHO_TOLERANCE


@dataclass(frozen=True)
class FissionResult:
    """Output of the bottleneck-elimination phase."""

    original: Topology
    optimized: Topology
    decisions: Tuple[FissionDecision, ...]
    analysis: SteadyStateResult
    replica_bound: Optional[int]
    bound_applied: bool

    @property
    def replications(self) -> Dict[str, int]:
        return {spec.name: spec.replication for spec in self.optimized.operators}

    @property
    def additional_replicas(self) -> int:
        """Replicas added on top of the original single copies.

        An operator with ``n`` replicas contributes ``n - 1`` additional
        replicas (Figure 9a of the paper counts exactly this).
        """
        return sum(
            spec.replication - 1 for spec in self.optimized.operators
        )

    @property
    def residual_bottlenecks(self) -> List[str]:
        """Operators whose bottleneck fission could not remove.

        Derived from the decisions (not from the verification analysis,
        whose correction chain also lists operators that only saturate
        transiently while the analysis walks down to the final rate).
        """
        return [d.name for d in self.decisions if not d.removed]

    @property
    def ideal_throughput_reached(self) -> bool:
        """Whether the optimized topology ingests at the full source rate."""
        return not self.analysis.corrections

    @property
    def throughput(self) -> float:
        return self.analysis.throughput


def _check_code_safety(base: Topology, replicas: Dict[str, int],
                       mode: str) -> None:
    """Refuse to replicate operators whose code contradicts their spec.

    Only operators actually assigned more than one replica are checked
    (a wrong declaration on a non-replicated operator is a lint
    finding, not a fission hazard), and only when they name an
    importable ``operator_class`` — declarations without code are
    trusted, as the paper's model does.
    """
    from repro.analysis.opcode import state_rank, try_analyze

    for name, degree in sorted(replicas.items()):
        if degree <= 1:
            continue
        spec = base.operator(name)
        facts = try_analyze(spec.operator_class)
        if facts is None:
            continue
        if state_rank(facts.inferred) > state_rank(spec.state):
            message = (
                f"refusing to replicate operator {name!r} x{degree}: "
                f"declared {spec.state.value} but {facts.class_path} is "
                f"provably {facts.inferred.value} ({facts.evidence()}); "
                "replication would split live state [SS201]. Fix the "
                "declaration or pass code_safety='off'."
            )
            if mode == "enforce":
                raise TopologyError(message)
            warnings.warn(message, UserWarning, stacklevel=3)


def eliminate_bottlenecks(
    topology: Topology,
    source_rate: Optional[float] = None,
    max_replicas: Optional[int] = None,
    partition_heuristic: str = "greedy",
    code_safety: str = "enforce",
) -> FissionResult:
    """Run bottleneck elimination (paper Algorithm 2).

    Parameters
    ----------
    topology:
        The topology to optimize; replication degrees present in the
        input are reset to one before the analysis.
    source_rate:
        Generation rate of the source (defaults to its service rate).
    max_replicas:
        Optional hold-off bound ``N_max`` on the total number of
        replicas of the optimized topology.
    partition_heuristic:
        Key-partitioning heuristic for partitioned-stateful operators.
    code_safety:
        What to do when an operator picked for replication has code
        provably more stateful than its declared state kind (rule
        SS201): ``"enforce"`` (default) raises :class:`TopologyError`,
        ``"warn"`` emits a :class:`UserWarning` and replicates anyway,
        ``"off"`` skips the check.
    """
    if code_safety not in ("enforce", "warn", "off"):
        raise ValueError(
            f"code_safety must be 'enforce', 'warn' or 'off', "
            f"got {code_safety!r}")
    base = topology.with_replications({name: 1 for name in topology.names})
    order = base.topological_order()
    source = base.source
    source_spec = base.operator(source)
    if source_rate is None:
        source_rate = source_spec.service_rate
    if source_rate <= 0.0:
        raise TopologyError(f"source rate must be positive, got {source_rate}")

    replicas: Dict[str, int] = {name: 1 for name in order}
    p_maxes: Dict[str, float] = {name: 1.0 for name in order}
    decisions: Dict[str, FissionDecision] = {}

    current_rate = source_rate
    # Unlike Algorithm 1 (at most one correction per vertex), a skewed
    # partitioned-stateful operator can trigger several restarts: each
    # lowers its optimal degree by at least one and re-partitions, so
    # the number of sweeps is bounded by the sum of the initial optimal
    # degrees rather than by |V|.  Use a generous cap; sweeps are cheap.
    max_restarts = 1000
    for _ in range(max_restarts):
        restart = _sweep(
            base, order, current_rate, replicas, p_maxes, decisions,
            partition_heuristic,
        )
        if restart is None:
            break
        current_rate = restart
    else:
        raise TopologyError(
            "bottleneck elimination did not converge; the topology violates "
            "the model assumptions"
        )

    if code_safety != "off":
        _check_code_safety(base, replicas, code_safety)

    optimized = base.with_replications(replicas)
    if max_replicas is not None:
        bounded = apply_replica_bound(optimized, max_replicas)
        bound_applied = bounded.total_replicas() != optimized.total_replicas()
        optimized = bounded
    else:
        bound_applied = False

    # Incremental against the replication-reset base: when the caller
    # already analyzed the input topology (the conformance harness
    # does), only the replicated vertices' downstream cone re-iterates;
    # downstream consumers (auto-fusion baseline, the conformance
    # prediction) then hit the memo instead of re-running fixed points.
    analysis = analyze_edit(
        base,
        optimized,
        source_rate=source_rate,
        partition_heuristic=partition_heuristic,
    )
    ordered_decisions = tuple(decisions[name] for name in order)
    return FissionResult(
        original=topology,
        optimized=optimized,
        decisions=ordered_decisions,
        analysis=analysis,
        replica_bound=max_replicas,
        bound_applied=bound_applied,
    )


def _sweep(
    topology: Topology,
    order: List[str],
    source_rate: float,
    replicas: Dict[str, int],
    p_maxes: Dict[str, float],
    decisions: Dict[str, FissionDecision],
    partition_heuristic: str,
) -> Optional[float]:
    """One topological sweep of Algorithm 2.

    Mutates ``replicas``/``p_maxes``/``decisions`` in place.  Returns
    ``None`` when the sweep completed without finding an irremovable
    bottleneck, or the corrected source rate when the sweep must restart.
    """
    departures: Dict[str, float] = {}
    source = topology.source
    for name in order:
        spec = topology.operator(name)
        if name == source:
            rho = source_rate / spec.service_rate
            departures[name] = source_rate * spec.gain
            decisions[name] = FissionDecision(
                name=name, state=spec.state, utilization_before=rho,
                optimal_replicas=1, replicas=1, p_max=1.0, removed=rho <= 1.0,
            )
            continue

        arrival = sum(
            departures[edge.source] * edge.probability
            for edge in topology.in_edges(name)
        )
        rho = arrival / spec.service_rate

        if rho <= 1.0 + RHO_TOLERANCE:
            departures[name] = min(arrival, spec.service_rate) * spec.gain
            previous = decisions.get(name)
            if (previous is not None and not previous.removed
                    and rho >= 1.0 - 1e-6):
                # This operator forced a source correction on an earlier
                # sweep (stateful or skewed-partitioned residual) and is
                # still pinned at utilization one: keep the failure
                # record — it is the binding residual bottleneck.
                continue
            # Not a bottleneck at the current (possibly throttled) source
            # rate: one replica suffices.  Restarts therefore shrink the
            # degrees of operators parallelized before the throttling —
            # the "adjust the replication degree of other vertices"
            # behaviour of Section 3.2.
            replicas[name] = 1
            p_maxes[name] = 1.0
            decisions[name] = FissionDecision(
                name=name, state=spec.state, utilization_before=rho,
                optimal_replicas=1, replicas=1, p_max=1.0, removed=True,
            )
            continue

        optimal = math.ceil(rho - RHO_TOLERANCE)
        if spec.state is StateKind.STATELESS:
            replicas[name] = optimal
            departures[name] = arrival * spec.gain
            decisions[name] = FissionDecision(
                name=name, state=spec.state, utilization_before=rho,
                optimal_replicas=optimal, replicas=optimal, p_max=1.0,
                removed=True,
            )
            continue

        if spec.state is StateKind.PARTITIONED:
            assert spec.keys is not None  # enforced by OperatorSpec
            used, p_max = _partition_for_rate(
                spec.keys, optimal, arrival, spec.service_rate,
                partition_heuristic,
            )
            replicas[name] = used
            p_maxes[name] = p_max
            residual_rho = arrival * p_max / spec.service_rate
            if residual_rho > 1.0 + RHO_TOLERANCE:
                # Skewed keys: bottleneck mitigated but not removed; the
                # residual utilization throttles the source.
                decisions[name] = FissionDecision(
                    name=name, state=spec.state, utilization_before=rho,
                    optimal_replicas=optimal, replicas=used, p_max=p_max,
                    removed=False,
                )
                return source_rate / residual_rho
            departures[name] = arrival * spec.gain
            # An operator that forced a restart on an earlier sweep and
            # whose hot replica is still pinned at utilization one is
            # the (mitigated-but-not-removed) residual bottleneck; keep
            # that status while refreshing the degree actually used.
            previously_failed = (name in decisions
                                 and not decisions[name].removed)
            still_binding = residual_rho >= 1.0 - 1e-6
            decisions[name] = FissionDecision(
                name=name, state=spec.state, utilization_before=rho,
                optimal_replicas=optimal, replicas=used, p_max=p_max,
                removed=not (previously_failed and still_binding),
            )
            continue

        # Stateful: fission impossible, throttle the source and restart.
        replicas[name] = 1
        decisions[name] = FissionDecision(
            name=name, state=spec.state, utilization_before=rho,
            optimal_replicas=optimal, replicas=1, p_max=1.0, removed=False,
        )
        return source_rate / rho

    return None


def _partition_for_rate(
    keys,
    optimal: int,
    arrival: float,
    service_rate: float,
    heuristic: str,
) -> Tuple[int, float]:
    """Choose a partitioned-stateful degree that unblocks the operator.

    Definition 1's ``ceil(rho)`` is the *minimum* degree assuming a
    perfectly even split; real key partitionings are slightly imbalanced
    (the hottest replica owns a fraction ``p_max > 1/n`` of the items),
    so the minimum degree may leave a small residual bottleneck.  This
    helper extends the paper's ``KeyPartitioning()`` step by also trying
    a few degrees above the optimum and keeping the first one whose hot
    replica is no longer saturated — extra replicas are useless once
    ``p_max`` hits the heaviest key frequency, at which point the skew
    genuinely cannot be parallelized away and the residual throttles the
    source (Section 3.2's "mitigated but not removed" case).
    """
    used, p_max, _ = key_partitioning(keys, optimal, heuristic=heuristic)
    best = (used, p_max)
    slack = max(8, optimal // 4)
    floor = keys.max_frequency()
    degree = optimal
    while (arrival * best[1] / service_rate > 1.0 + RHO_TOLERANCE
           and best[1] > floor + 1e-12
           and degree < optimal + slack):
        degree += 1
        used, p_max, _ = key_partitioning(keys, degree, heuristic=heuristic)
        if p_max < best[1]:
            best = (used, p_max)
    return best


def apply_replica_bound(topology: Topology, max_replicas: int) -> Topology:
    """Cap the total number of replicas at ``max_replicas`` (Section 3.2).

    Every replication degree is multiplied by ``r = N_max / N`` and
    rounded; rounding anomalies are fixed by trimming the operators with
    the largest degrees (and, symmetrically, growing the smallest ones
    when rounding under-shoots), so the resulting total never exceeds
    the bound while staying as close to it as possible.  Stateful
    operators are pinned at one replica throughout.
    """
    if max_replicas < len(topology):
        raise TopologyError(
            f"max_replicas={max_replicas} is below the number of operators "
            f"({len(topology)}); every operator needs at least one replica"
        )
    total = topology.total_replicas()
    if total <= max_replicas:
        return topology

    ratio = max_replicas / total
    degrees: Dict[str, int] = {}
    for spec in topology.operators:
        if spec.replication == 1:
            degrees[spec.name] = 1
        else:
            degrees[spec.name] = max(1, round(spec.replication * ratio))

    # Fix rounding anomalies: trim the largest degrees until the bound
    # holds, then grow the most-trimmed operators if slack remains.
    def scaled_total() -> int:
        return sum(degrees.values())

    while scaled_total() > max_replicas:
        candidate = max(
            (name for name in degrees if degrees[name] > 1),
            key=lambda n: degrees[n],
        )
        degrees[candidate] -= 1

    originals = {spec.name: spec.replication for spec in topology.operators}
    while scaled_total() < max_replicas:
        under = [
            name for name in degrees
            if degrees[name] < originals[name]
        ]
        if not under:
            break
        # Grow the operator whose degree lost the largest fraction.
        candidate = max(under, key=lambda n: originals[n] / degrees[n])
        degrees[candidate] += 1

    return topology.with_replications(degrees)
