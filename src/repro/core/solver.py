"""Memoized and incremental steady-state solver.

The optimizer search loops (:mod:`repro.core.candidates`,
:mod:`repro.core.autofusion`, :mod:`repro.core.fission`) call the
steady-state analysis once per candidate restructuring per round —
O(topology) fixed-point work for edits that touch O(1) vertices.  This
module makes that loop cheap while staying *bit-identical* to
:func:`repro.core.steady_state.analyze`:

* :meth:`SteadyStateSolver.analyze` memoizes full analyses behind a
  canonical topology signature (operator specs, edge lists in insertion
  order, and every analysis parameter), so re-analyzing an unchanged
  topology is a dictionary lookup;
* :meth:`SteadyStateSolver.analyze_edit` re-solves a topology derived
  from an already-analyzed base by recomputing only the *dirty cone* —
  the edited vertices and their descendants — while clean vertices reuse
  the converged per-pass rates of the base solve.

Exactness argument for the incremental path: a vertex is *clean* when
its spec and (ordered) input-edge list are unchanged and no ancestor
was edited.  Clean vertices form an ancestor-closed set, so during a
topological pass at a given source rate their arrival sums accumulate
the same floats in the same order as the base solve — the cached
:class:`~repro.core.steady_state.OperatorRates` are bit-identical to
what a fresh pass would produce.  Dirty vertices are recomputed with the
very same :func:`~repro.core.steady_state._single_pass` code, and the
Theorem 3.2 correction loop is replicated verbatim, so the fixed point
(rates, corrections, throttled source rate) matches a fresh
:func:`~repro.core.steady_state.analyze` exactly.  The property tests in
``tests/core/test_solver.py`` assert this equality on seeded random
topologies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.graph import BatchConfig, OperatorSpec, Topology, TopologyError
from repro.core.steady_state import (
    Correction,
    OperatorRates,
    SteadyStateResult,
    _first_bottleneck,
    _single_pass,
    operator_capacity,
)
from repro.instrumentation import SOLVER


def _spec_signature(spec: OperatorSpec) -> tuple:
    """Hashable digest of the spec fields the analysis depends on.

    ``operator_class``/``operator_args`` are deliberately excluded: they
    configure the runtime implementation, not the cost model, so two
    topologies differing only there share one cache entry.
    """
    keys = tuple(spec.keys.items()) if spec.keys is not None else None
    return (
        spec.name,
        spec.service_time,
        spec.state.value,
        spec.input_selectivity,
        spec.output_selectivity,
        spec.replication,
        keys,
    )


def _freeze_mapping(mapping: Optional[Mapping[str, float]]) -> Optional[tuple]:
    if mapping is None:
        return None
    return tuple(sorted(mapping.items()))


def topology_signature(
    topology: Topology,
    source_rate: Optional[float] = None,
    partition_heuristic: str = "greedy",
    max_iterations: Optional[int] = None,
    availability: Optional[Mapping[str, float]] = None,
    gain_factor: Optional[Mapping[str, float]] = None,
    input_factor: Optional[Mapping[str, float]] = None,
) -> tuple:
    """Canonical cache key of one ``analyze()`` invocation.

    Edge order is part of the key: arrival rates sum floats in input-edge
    insertion order, and float addition is not associative, so two
    topologies with re-ordered edges may legitimately produce different
    last-bit results.
    """
    operators = tuple(
        _spec_signature(topology.operator(name)) for name in topology.names
    )
    edges = tuple(
        (edge.source, edge.target, edge.probability) for edge in topology.edges
    )
    return (
        operators,
        edges,
        source_rate,
        partition_heuristic,
        max_iterations,
        _freeze_mapping(availability),
        _freeze_mapping(gain_factor),
        _freeze_mapping(input_factor),
    )


class _CacheEntry:
    """A converged solve plus the intermediate state reuse needs."""

    __slots__ = ("result", "capacities", "passes")

    def __init__(
        self,
        result: SteadyStateResult,
        capacities: Dict[str, Tuple[float, float]],
        passes: Dict[float, Dict[str, OperatorRates]],
    ) -> None:
        self.result = result
        self.capacities = capacities
        #: source_rate -> per-vertex rates of the pass run at that rate.
        self.passes = passes


def _dirty_cone(base: Topology, edited: Topology) -> Set[str]:
    """Vertices of ``edited`` that cannot reuse the base solve.

    A vertex is *changed* when it is new, its spec differs, or its
    ordered input-edge list differs from the base; the dirty cone is the
    changed set plus all its descendants in the edited topology.
    """
    base_names = set(base.names)
    changed: Set[str] = set()
    for name in edited.names:
        if name not in base_names:
            changed.add(name)
            continue
        if _spec_signature(edited.operator(name)) != _spec_signature(
            base.operator(name)
        ):
            changed.add(name)
            continue
        edited_in = tuple(
            (e.source, e.probability) for e in edited.in_edges(name)
        )
        base_in = tuple((e.source, e.probability) for e in base.in_edges(name))
        if edited_in != base_in:
            changed.add(name)
    dirty = set(changed)
    stack = list(changed)
    while stack:
        for successor in edited.successors(stack.pop()):
            if successor not in dirty:
                dirty.add(successor)
                stack.append(successor)
    return dirty


class SteadyStateSolver:
    """LRU-memoized front-end to the steady-state analysis.

    Results returned from the cache are re-bound to the caller's
    topology object (``dataclasses.replace``), so identity-based callers
    (``result.topology is my_topology``) keep working.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._cache: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # cached full analysis

    def analyze(
        self,
        topology: Topology,
        source_rate: Optional[float] = None,
        partition_heuristic: str = "greedy",
        max_iterations: Optional[int] = None,
        availability: Optional[Mapping[str, float]] = None,
        gain_factor: Optional[Mapping[str, float]] = None,
        input_factor: Optional[Mapping[str, float]] = None,
    ) -> SteadyStateResult:
        """Memoized equivalent of :func:`repro.core.steady_state.analyze`."""
        if source_rate is None:
            # Resolve the default before keying so explicit and implicit
            # source rates share one entry (analyze() resolves the same).
            source_rate = topology.operator(topology.source).service_rate
        signature = topology_signature(
            topology, source_rate, partition_heuristic, max_iterations,
            availability, gain_factor, input_factor,
        )
        entry = self._cache.get(signature)
        if entry is not None:
            SOLVER.cache_hits += 1
            self._cache.move_to_end(signature)
            return self._rebind(entry.result, topology)
        SOLVER.cache_misses += 1
        entry = self._full_solve(
            topology, source_rate, partition_heuristic, max_iterations,
            availability, gain_factor, input_factor,
        )
        self._remember(signature, entry)
        return entry.result

    # ------------------------------------------------------------------
    # incremental analysis after a topology edit

    def analyze_edit(
        self,
        base: Topology,
        edited: Topology,
        source_rate: Optional[float] = None,
        partition_heuristic: str = "greedy",
        max_iterations: Optional[int] = None,
        availability: Optional[Mapping[str, float]] = None,
        gain_factor: Optional[Mapping[str, float]] = None,
        input_factor: Optional[Mapping[str, float]] = None,
    ) -> SteadyStateResult:
        """Analyze ``edited``, reusing a cached solve of ``base``.

        The edit (fusion, fission, spec change) is discovered
        automatically by diffing the two topologies; only the dirty cone
        is recomputed per pass.  Falls back to a cached full solve when
        the base was never analyzed with these parameters.
        """
        if source_rate is None:
            base_rate = base.operator(base.source).service_rate
            edited_rate = edited.operator(edited.source).service_rate
        else:
            base_rate = edited_rate = source_rate

        edited_signature = topology_signature(
            edited, edited_rate, partition_heuristic, max_iterations,
            availability, gain_factor, input_factor,
        )
        entry = self._cache.get(edited_signature)
        if entry is not None:
            SOLVER.cache_hits += 1
            self._cache.move_to_end(edited_signature)
            return self._rebind(entry.result, edited)
        SOLVER.cache_misses += 1

        base_signature = topology_signature(
            base, base_rate, partition_heuristic, max_iterations,
            availability, gain_factor, input_factor,
        )
        base_entry = self._cache.get(base_signature)
        if base_entry is None:
            entry = self._full_solve(
                edited, edited_rate, partition_heuristic, max_iterations,
                availability, gain_factor, input_factor,
            )
            self._remember(edited_signature, entry)
            return entry.result

        SOLVER.incremental_solves += 1
        dirty = _dirty_cone(base, edited)
        order = edited.topological_order()
        iterations = max_iterations
        if iterations is None:
            iterations = len(order) + 1

        # Clean vertices have unchanged specs and identical derating
        # parameters (both are part of the base signature), so their
        # capacities can be copied without re-running partition_shares.
        capacities: Dict[str, Tuple[float, float]] = {}
        base_capacities = base_entry.capacities
        for name in order:
            if name in dirty:
                capacities[name] = _derated_capacity(
                    edited, name, partition_heuristic, availability
                )
            else:
                capacities[name] = base_capacities[name]

        memo = base_entry.passes
        passes: Dict[float, Dict[str, OperatorRates]] = {}
        corrections: List[Correction] = []
        current_rate = edited_rate
        for _ in range(iterations):
            reuse = memo.get(current_rate)
            rates = _single_pass(
                edited, order, capacities, current_rate,
                gain_factor=gain_factor, input_factor=input_factor,
                reuse=reuse, dirty=dirty if reuse is not None else None,
            )
            passes[current_rate] = rates
            bottleneck = _first_bottleneck(order, rates)
            if bottleneck is None:
                result = SteadyStateResult(
                    topology=edited,
                    rates=rates,
                    corrections=tuple(corrections),
                    source_rate=current_rate,
                )
                entry = _CacheEntry(result, capacities, passes)
                self._remember(edited_signature, entry)
                return result
            rho = rates[bottleneck].utilization
            corrected = current_rate / rho
            corrections.append(
                Correction(
                    bottleneck=bottleneck,
                    utilization=rho,
                    source_rate_before=current_rate,
                    source_rate_after=corrected,
                )
            )
            current_rate = corrected
        raise TopologyError(
            f"steady-state analysis did not converge after {iterations} "
            "corrections; the topology violates the model assumptions"
        )

    # ------------------------------------------------------------------
    # internals

    def _full_solve(
        self,
        topology: Topology,
        source_rate: float,
        partition_heuristic: str,
        max_iterations: Optional[int],
        availability: Optional[Mapping[str, float]],
        gain_factor: Optional[Mapping[str, float]],
        input_factor: Optional[Mapping[str, float]],
    ) -> _CacheEntry:
        """Replica of :func:`analyze`'s fixed point, recording each pass."""
        SOLVER.full_solves += 1
        if source_rate <= 0.0:
            raise TopologyError(
                f"source rate must be positive, got {source_rate}"
            )
        order = topology.topological_order()
        if max_iterations is None:
            max_iterations = len(order) + 1
        capacities = {
            name: _derated_capacity(
                topology, name, partition_heuristic, availability
            )
            for name in order
        }
        passes: Dict[float, Dict[str, OperatorRates]] = {}
        corrections: List[Correction] = []
        current_rate = source_rate
        for _ in range(max_iterations):
            rates = _single_pass(
                topology, order, capacities, current_rate,
                gain_factor=gain_factor, input_factor=input_factor,
            )
            passes[current_rate] = rates
            bottleneck = _first_bottleneck(order, rates)
            if bottleneck is None:
                result = SteadyStateResult(
                    topology=topology,
                    rates=rates,
                    corrections=tuple(corrections),
                    source_rate=current_rate,
                )
                return _CacheEntry(result, capacities, passes)
            rho = rates[bottleneck].utilization
            corrected = current_rate / rho
            corrections.append(
                Correction(
                    bottleneck=bottleneck,
                    utilization=rho,
                    source_rate_before=current_rate,
                    source_rate_after=corrected,
                )
            )
            current_rate = corrected
        raise TopologyError(
            f"steady-state analysis did not converge after {max_iterations} "
            "corrections; the topology violates the model assumptions"
        )

    def _remember(self, signature: tuple, entry: _CacheEntry) -> None:
        self._cache[signature] = entry
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)

    @staticmethod
    def _rebind(result: SteadyStateResult,
                topology: Topology) -> SteadyStateResult:
        if result.topology is topology:
            return result
        return replace(result, topology=topology)


def _derated_capacity(
    topology: Topology,
    name: str,
    partition_heuristic: str,
    availability: Optional[Mapping[str, float]],
) -> Tuple[float, float]:
    """Capacity with the availability derating ``analyze()`` applies."""
    capacity, p_max = operator_capacity(topology, name, partition_heuristic)
    if availability is not None:
        derate = availability.get(name, 1.0)
        if not 0.0 < derate <= 1.0:
            raise TopologyError(
                f"availability of {name!r} must be in (0, 1], got {derate}"
            )
        capacity *= derate
    return capacity, p_max


# ----------------------------------------------------------------------
# batching cost model


@dataclass(frozen=True)
class EdgeBatchLatency:
    """Predicted extra queueing latency one batched edge adds."""

    source: str
    target: str
    batch_size: int
    #: Mean seconds a tuple waits for its batch to fill (or flush).
    added_latency: float


@dataclass(frozen=True)
class BatchingPrediction:
    """Analytical throughput/latency trade-off of mailbox batching.

    Produced by :func:`predict_batching`; all rates are tuples/second
    and all latencies seconds, comparable with the measured counters of
    :class:`repro.runtime.system.RuntimeResult`.
    """

    batch_size: int
    hop_overhead: float
    baseline_throughput: float
    throughput: float
    edge_latencies: Tuple[EdgeBatchLatency, ...]

    @property
    def throughput_gain(self) -> float:
        """Batched over unbatched throughput (1.0 = no gain)."""
        if self.baseline_throughput <= 0.0:
            return 1.0
        return self.throughput / self.baseline_throughput

    @property
    def mean_added_latency(self) -> float:
        """Mean per-edge batching delay over all batched edges."""
        if not self.edge_latencies:
            return 0.0
        return (sum(entry.added_latency for entry in self.edge_latencies)
                / len(self.edge_latencies))


def predict_batching(
    topology: Topology,
    batch_size: int,
    hop_overhead: float,
    flush_timeout: Optional[float] = None,
    source_rate: Optional[float] = None,
    solver: Optional["SteadyStateSolver"] = None,
) -> BatchingPrediction:
    """Predict what mailbox batching does to throughput and latency.

    Cost model (micro-batch accounting in the spirit of the Spark
    Streaming simulation literature): every delivered *message* costs
    its receiver a fixed hop overhead ``hop_overhead`` — mailbox lock,
    condition wakeup and dispatch — on top of the operator's declared
    service time.  Packing ``b`` tuples per message amortizes the hop to
    ``hop_overhead / b`` per tuple, so an operator's effective service
    time falls from ``T + h`` (unbatched baseline) to ``T + h/b`` and
    the bottleneck capacity rises accordingly.  The price is queueing
    delay: on an edge with tuple rate λ the k-th tuple of a batch of
    ``b`` waits for the remaining ``b - k`` arrivals, a mean of
    ``(b - 1) / (2λ)`` seconds, capped by the flush timeout (a partial
    batch never waits past its deadline).

    Per-edge ``Edge.batch`` overrides take precedence over the global
    ``batch_size``/``flush_timeout``, mirroring the runtime's wiring.
    An operator fed by edges with different batch sizes amortizes the
    hop by the arrival-weighted mean of ``1/b`` over its input edges
    (weights from the unbatched baseline solve).
    """
    if batch_size < 1:
        raise TopologyError(f"batch size must be >= 1, got {batch_size}")
    if hop_overhead < 0.0:
        raise TopologyError(
            f"hop overhead must be non-negative, got {hop_overhead}")
    if flush_timeout is None:
        flush_timeout = BatchConfig().flush_timeout
    solver = solver or DEFAULT_SOLVER

    def edge_batch(edge) -> Tuple[int, float]:
        if edge.batch is not None:
            return edge.batch.size, edge.batch.flush_timeout
        return batch_size, flush_timeout

    def derated(per_vertex_hop: Mapping[str, float]) -> Topology:
        specs = []
        for spec in topology.operators:
            hop = per_vertex_hop.get(spec.name, 0.0)
            if hop > 0.0:
                spec = spec.with_service_time(spec.service_time + hop)
            specs.append(spec)
        return Topology(specs, topology.edges)

    # Baseline: every tuple is its own message, every non-source vertex
    # pays the full hop per tuple (the source has no input mailbox).
    receivers = [name for name in topology.names if name != topology.source]
    baseline = solver.analyze(
        derated({name: hop_overhead for name in receivers}),
        source_rate=source_rate,
    )

    # Arrival-weighted amortized hop per receiver, using baseline rates.
    amortized: Dict[str, float] = {}
    for name in receivers:
        weighted = 0.0
        total = 0.0
        for edge in topology.in_edges(name):
            size, _ = edge_batch(edge)
            rate = (baseline.rates[edge.source].departure_rate
                    * edge.probability)
            weighted += rate / size
            total += rate
        amortized[name] = (hop_overhead * weighted / total if total > 0.0
                           else hop_overhead / batch_size)
    batched = solver.analyze(derated(amortized), source_rate=source_rate)

    latencies = []
    for edge in topology.edges:
        size, deadline = edge_batch(edge)
        if size <= 1:
            continue
        rate = batched.rates[edge.source].departure_rate * edge.probability
        fill_wait = (size - 1) / (2.0 * rate) if rate > 0.0 else deadline
        latencies.append(EdgeBatchLatency(
            source=edge.source,
            target=edge.target,
            batch_size=size,
            added_latency=min(fill_wait, deadline),
        ))
    return BatchingPrediction(
        batch_size=batch_size,
        hop_overhead=hop_overhead,
        baseline_throughput=baseline.throughput,
        throughput=batched.throughput,
        edge_latencies=tuple(latencies),
    )


# ----------------------------------------------------------------------
# sharding (multi-process placement) cost model


#: Default per-tuple pickle/unpickle cost (seconds, one direction).
DEFAULT_SERIALIZE_OVERHEAD = 2e-6
#: Default per-message pipe hop cost (send syscall + reader wakeup).
DEFAULT_IPC_OVERHEAD = 10e-6


@dataclass(frozen=True)
class ShardingPrediction:
    """Analytical cost/benefit of a multi-process shard placement.

    Produced by :func:`predict_sharding`; comparable with the measured
    throughput of :class:`repro.runtime.procshard.ProcShardSystem` (the
    process backend) and of the threaded
    :class:`repro.runtime.system.ActorSystem` (the GIL-capped estimate
    in :attr:`single_process_throughput`).
    """

    shards: int
    batch_size: int
    ipc_overhead: float
    serialize_overhead: float
    #: Fluid-model throughput with every replica on a dedicated core
    #: and free communication — the multi-core ideal.
    baseline_throughput: float
    #: Throughput after the IPC tax on crossing edges and the per-shard
    #: one-core capacity cap — what the process backend should reach.
    throughput: float
    #: All actors co-located on one core (zero IPC): the analytic cap
    #: of the threaded backend on a GIL-bound interpreter.
    single_process_throughput: float
    #: CPU demand of each shard in cores (busy seconds per second) at
    #: the predicted operating point, indexed by shard id.
    shard_loads: Tuple[Tuple[int, float], ...]
    #: Edges whose endpoints live in different shards (vertex homes).
    crossing_edges: Tuple[Tuple[str, str], ...]

    @property
    def predicted_speedup(self) -> float:
        """Process-backend over threaded-backend throughput."""
        if self.single_process_throughput <= 0.0:
            return 1.0
        return self.throughput / self.single_process_throughput

    @property
    def ipc_tax(self) -> float:
        """Fraction of the multi-core ideal lost to hops/pickling."""
        if self.baseline_throughput <= 0.0:
            return 0.0
        return 1.0 - self.throughput / self.baseline_throughput


def predict_sharding(
    topology: Topology,
    placement: Mapping[str, Sequence[int]],
    batch_size: int = 1,
    ipc_overhead: float = DEFAULT_IPC_OVERHEAD,
    serialize_overhead: float = DEFAULT_SERIALIZE_OVERHEAD,
    source_rate: Optional[float] = None,
    solver: Optional["SteadyStateSolver"] = None,
) -> ShardingPrediction:
    """Price a process-shard placement analytically.

    ``placement`` maps every vertex to one shard id per replica (length
    must equal the spec's replication); the first entry is the vertex's
    *home* shard, where single operators — and the emitter/collector of
    replicated ones — run.

    Cost model, mirroring :func:`predict_batching`'s hop accounting:

    * a tuple crossing a shard boundary costs
      ``tau = 2 * serialize_overhead + ipc_overhead / batch_size``
      (pickle + unpickle, plus the pipe hop amortized over the batch
      envelope), charged to the receiving vertex's service time
      weighted by the fraction of its arrivals that cross;
    * a replicated vertex whose replicas are scattered off its home
      shard pays ``2 * tau`` on the scattered fraction (emitter to
      replica and replica to collector both cross);
    * each shard is one OS process pinned to one core by the GIL, so
      the co-located replicas of a shard share one core: the fluid
      throughput is additionally capped by ``1 / max_s C_s`` where
      ``C_s`` is shard ``s``'s busy CPU seconds per source tuple.

    ``single_process_throughput`` applies the one-core cap to the whole
    topology with zero IPC — the threaded backend's analytic ceiling —
    so :attr:`ShardingPrediction.predicted_speedup` prices exactly the
    gain the process backend should deliver on real hardware.
    """
    if batch_size < 1:
        raise TopologyError(f"batch size must be >= 1, got {batch_size}")
    if ipc_overhead < 0.0:
        raise TopologyError(
            f"ipc overhead must be non-negative, got {ipc_overhead}")
    if serialize_overhead < 0.0:
        raise TopologyError(
            f"serialize overhead must be non-negative, "
            f"got {serialize_overhead}")
    for spec in topology.operators:
        shards_of = placement.get(spec.name)
        if shards_of is None:
            raise TopologyError(
                f"placement misses operator {spec.name!r}")
        if len(shards_of) != spec.replication:
            raise TopologyError(
                f"placement for {spec.name!r} names {len(shards_of)} "
                f"shards for {spec.replication} replicas")
        if any(s < 0 for s in shards_of):
            raise TopologyError(
                f"placement for {spec.name!r} uses a negative shard id")
    solver = solver or DEFAULT_SOLVER

    def home(name: str) -> int:
        return placement[name][0]

    tau = 2.0 * serialize_overhead + ipc_overhead / batch_size
    crossing = tuple(
        (edge.source, edge.target) for edge in topology.edges
        if home(edge.source) != home(edge.target)
    )

    baseline = solver.analyze(topology, source_rate=source_rate)

    # IPC tax per receiver: arrival-weighted crossing fraction of its
    # input edges, plus the replica-scatter round trip.
    taxed_specs = []
    for spec in topology.operators:
        tax = 0.0
        in_edges = topology.in_edges(spec.name)
        if in_edges:
            weighted = 0.0
            total = 0.0
            for edge in in_edges:
                rate = (baseline.rates[edge.source].departure_rate
                        * edge.probability)
                if home(edge.source) != home(edge.target):
                    weighted += rate
                total += rate
            if total > 0.0:
                tax += tau * weighted / total
        scattered = sum(1 for s in placement[spec.name]
                        if s != home(spec.name))
        if spec.replication > 1 and scattered:
            tax += 2.0 * tau * scattered / spec.replication
        if tax > 0.0:
            spec = spec.with_service_time(spec.service_time + tax)
        taxed_specs.append(spec)
    taxed_topology = Topology(taxed_specs, topology.edges)
    taxed = solver.analyze(taxed_topology, source_rate=source_rate)

    def shard_demands(result: SteadyStateResult,
                      topo: Topology,
                      collapse: bool) -> Dict[int, float]:
        """Busy CPU seconds per second, per shard (cores of demand)."""
        demands: Dict[int, float] = {}
        for spec in topo.operators:
            arrival = result.rates[spec.name].arrival_rate
            activations = arrival / spec.input_selectivity
            busy = activations * spec.service_time
            if collapse:
                demands[0] = demands.get(0, 0.0) + busy
                continue
            share = busy / spec.replication
            for shard in placement[spec.name]:
                demands[shard] = demands.get(shard, 0.0) + share
        return demands

    def capped_throughput(result: SteadyStateResult,
                          topo: Topology,
                          collapse: bool) -> float:
        demands = shard_demands(result, topo, collapse)
        worst = max(demands.values(), default=0.0)
        if worst <= 1.0 or result.throughput <= 0.0:
            return result.throughput
        # The fluid solve assumed a dedicated core per replica; scale
        # the operating point down until the busiest shard fits one.
        return result.throughput / worst

    throughput = capped_throughput(taxed, taxed_topology, collapse=False)
    single = capped_throughput(baseline, topology, collapse=True)

    # Shard loads reported at the capped operating point.
    demands = shard_demands(taxed, taxed_topology, collapse=False)
    scale = (throughput / taxed.throughput
             if taxed.throughput > 0.0 else 1.0)
    shard_ids = sorted({s for shards in placement.values() for s in shards})
    loads = tuple((s, demands.get(s, 0.0) * scale) for s in shard_ids)

    return ShardingPrediction(
        shards=len(shard_ids),
        batch_size=batch_size,
        ipc_overhead=ipc_overhead,
        serialize_overhead=serialize_overhead,
        baseline_throughput=baseline.throughput,
        throughput=throughput,
        single_process_throughput=single,
        shard_loads=loads,
        crossing_edges=crossing,
    )


# ----------------------------------------------------------------------
# checkpointing cost model


@dataclass(frozen=True)
class CheckpointPrediction:
    """Analytical cost of aligned-barrier checkpointing.

    Produced by :func:`predict_checkpoint`; comparable with the
    measured throughput of a checkpointed
    :class:`repro.runtime.system.ActorSystem` run and with the
    recovery timings of :func:`repro.runtime.checkpoint.
    run_recoverable`.
    """

    interval_items: int
    snapshot_overhead: float
    baseline_throughput: float
    throughput: float
    #: Per-vertex service-time tax (seconds per tuple) the barrier
    #: cadence adds, in topology insertion order.
    vertex_taxes: Tuple[Tuple[str, float], ...]
    #: Mean source items replayed after a crash at a uniformly random
    #: point of an epoch (half the interval).
    mean_replay_items: float
    #: Mean seconds a rollback costs: state restore for every vertex
    #: plus replaying the lost half-epoch at the checkpointed rate.
    mean_recovery_time: float

    @property
    def overhead_ratio(self) -> float:
        """Fraction of throughput the checkpoint cadence costs (0 = free)."""
        if self.baseline_throughput <= 0.0:
            return 0.0
        return 1.0 - self.throughput / self.baseline_throughput


def predict_checkpoint(
    topology: Topology,
    checkpoint: Optional["CheckpointConfig"] = None,
    interval_items: Optional[int] = None,
    snapshot_overhead: Optional[float] = None,
    source_rate: Optional[float] = None,
    solver: Optional["SteadyStateSolver"] = None,
) -> CheckpointPrediction:
    """Predict what aligned-barrier checkpointing costs in throughput.

    Cost model: the source emits a barrier every ``interval_items``
    items, so barriers cross every operator at rate ``λ_src /
    interval``.  Each crossing pauses the operator for
    ``snapshot_overhead`` seconds (state capture happens on the actor
    thread, between items).  Amortized per processed tuple, operator
    *v* with arrival rate ``λ_v`` pays a service-time tax of
    ``snapshot_overhead · λ_src / (interval · λ_v)`` — operators late
    in a selective pipeline see few tuples per barrier and pay
    proportionally more per tuple.  The derated topology is re-solved
    to get the checkpointed throughput, mirroring how
    :func:`predict_batching` prices the mailbox hop (and how the
    simulator's ``SimulationConfig.checkpoint_interval`` derates its
    stations, keeping the two backends comparable).

    Parameters come from ``checkpoint`` (a
    :class:`~repro.core.graph.CheckpointConfig`), from the explicit
    ``interval_items``/``snapshot_overhead`` overrides, or from
    ``topology.checkpoint``, in that order of precedence.
    """
    from repro.core.graph import CheckpointConfig

    config = checkpoint or topology.checkpoint
    if interval_items is None:
        interval_items = (config.interval_items if config is not None
                          else CheckpointConfig().interval_items)
    if snapshot_overhead is None:
        snapshot_overhead = (config.snapshot_overhead if config is not None
                             else 0.0)
    if interval_items < 1:
        raise TopologyError(
            f"checkpoint interval must be >= 1, got {interval_items}")
    if snapshot_overhead < 0.0:
        raise TopologyError(
            f"snapshot overhead must be non-negative, "
            f"got {snapshot_overhead}")
    solver = solver or DEFAULT_SOLVER

    baseline = solver.analyze(topology, source_rate=source_rate)
    emission = baseline.rates[topology.source].departure_rate
    barrier_rate = emission / interval_items

    taxes: Dict[str, float] = {}
    specs = []
    for spec in topology.operators:
        rates = baseline.rates[spec.name]
        arrival = (emission if spec.name == topology.source
                   else rates.arrival_rate)
        tax = 0.0
        if snapshot_overhead > 0.0 and arrival > 0.0:
            tax = snapshot_overhead * barrier_rate / arrival
            spec = spec.with_service_time(spec.service_time + tax)
        taxes[spec.name] = tax
        specs.append(spec)
    if snapshot_overhead > 0.0:
        checked = solver.analyze(Topology(specs, topology.edges),
                                 source_rate=source_rate)
        throughput = checked.throughput
    else:
        throughput = baseline.throughput

    mean_replay_items = interval_items / 2.0
    restore_cost = snapshot_overhead * len(topology.names)
    replay_time = (mean_replay_items / throughput if throughput > 0.0
                   else float("inf"))
    return CheckpointPrediction(
        interval_items=interval_items,
        snapshot_overhead=snapshot_overhead,
        baseline_throughput=baseline.throughput,
        throughput=throughput,
        vertex_taxes=tuple((name, taxes[name]) for name in topology.names),
        mean_replay_items=mean_replay_items,
        mean_recovery_time=restore_cost + replay_time,
    )


#: Process-wide default solver: every module of the optimizer pipeline
#: shares it so candidate evaluation, auto-fusion rounds and the
#: conformance harness all hit one memo (worker processes of a parallel
#: sweep each get their own copy via fork/spawn).
DEFAULT_SOLVER = SteadyStateSolver()


def analyze_cached(topology: Topology, **kwargs) -> SteadyStateResult:
    """Memoized :func:`repro.core.steady_state.analyze` (default solver)."""
    return DEFAULT_SOLVER.analyze(topology, **kwargs)


def analyze_edit(base: Topology, edited: Topology,
                 **kwargs) -> SteadyStateResult:
    """Incremental analysis of an edited topology (default solver)."""
    return DEFAULT_SOLVER.analyze_edit(base, edited, **kwargs)


def clear_cache() -> None:
    """Drop every memoized solve of the default solver."""
    DEFAULT_SOLVER.clear()
