"""Core SpinStreams algorithms: cost models and optimizations.

This package holds the paper's primary contribution:

* :mod:`repro.core.graph` — the abstract topology model;
* :mod:`repro.core.steady_state` — steady-state throughput analysis
  with backpressure (paper Algorithm 1 + Theorem 3.2);
* :mod:`repro.core.fission` — bottleneck elimination via operator
  replication (paper Algorithm 2) and the hold-off replica bound;
* :mod:`repro.core.partitioning` — key partitioning heuristics for
  partitioned-stateful operators;
* :mod:`repro.core.fusion` — operator fusion (paper Algorithm 3);
* :mod:`repro.core.candidates` — ranked fusion-candidate enumeration;
* :mod:`repro.core.report` — Table 1/2-style textual reports.

Extensions beyond the paper (its §7 future work):

* :mod:`repro.core.latency` — static end-to-end latency estimation;
* :mod:`repro.core.multisource` — multiple sources via fictitious-source
  normalization;
* :mod:`repro.core.cycles` — cyclic topologies (fixed-point solver);
* :mod:`repro.core.autofusion` — automatic fusion selection;
* :mod:`repro.core.memory` — static memory-footprint estimation.
"""

from repro.core.autofusion import (
    AutoFusionResult,
    BatchSizeChoice,
    auto_fuse,
    search_batch_sizes,
)

from repro.core.candidates import FusionCandidate, enumerate_candidates
from repro.core.cycles import (
    CyclicGraph,
    CyclicRates,
    CyclicResult,
    analyze_cyclic,
)
from repro.core.fission import (
    FissionDecision,
    FissionResult,
    apply_replica_bound,
    eliminate_bottlenecks,
)
from repro.core.fusion import (
    FusionError,
    FusionPlan,
    FusionResult,
    apply_fusion,
    build_fused_topology,
    fusion_service_time,
    plan_fusion,
    validate_fusion,
)
from repro.core.graph import (
    CheckpointConfig,
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.core.latency import (
    LatencyEstimate,
    OperatorLatency,
    estimate_latency,
    waiting_time,
)
from repro.core.memory import (
    MemoryEstimate,
    OperatorMemory,
    estimate_memory,
    memory_report,
)
from repro.core.multisource import (
    FICTITIOUS_SOURCE,
    MultiSourceTopology,
    merge_sources,
)
from repro.core.partitioning import (
    PartitionPlan,
    consistent_hash_partitioning,
    greedy_partitioning,
    key_partitioning,
    partition_shares,
    stable_key_hash,
)
from repro.core.report import analysis_report, fission_report, fusion_report
from repro.core.solver import (
    CheckpointPrediction,
    ShardingPrediction,
    SteadyStateSolver,
    analyze_cached,
    analyze_edit,
    clear_cache,
    predict_checkpoint,
    predict_sharding,
)
from repro.core.steady_state import (
    OperatorRates,
    SteadyStateResult,
    analyze,
    operator_capacity,
    predicted_throughput,
)

__all__ = [
    "AutoFusionResult",
    "BatchSizeChoice",
    "CheckpointConfig",
    "CheckpointPrediction",
    "CyclicGraph",
    "CyclicRates",
    "CyclicResult",
    "Edge",
    "FICTITIOUS_SOURCE",
    "LatencyEstimate",
    "MemoryEstimate",
    "MultiSourceTopology",
    "OperatorMemory",
    "OperatorLatency",
    "FissionDecision",
    "FissionResult",
    "FusionCandidate",
    "FusionError",
    "FusionPlan",
    "FusionResult",
    "KeyDistribution",
    "OperatorRates",
    "OperatorSpec",
    "PartitionPlan",
    "StateKind",
    "SteadyStateResult",
    "ShardingPrediction",
    "SteadyStateSolver",
    "Topology",
    "TopologyError",
    "analysis_report",
    "analyze",
    "analyze_cached",
    "analyze_cyclic",
    "analyze_edit",
    "auto_fuse",
    "search_batch_sizes",
    "clear_cache",
    "apply_fusion",
    "apply_replica_bound",
    "build_fused_topology",
    "consistent_hash_partitioning",
    "eliminate_bottlenecks",
    "enumerate_candidates",
    "estimate_latency",
    "estimate_memory",
    "fission_report",
    "fusion_report",
    "fusion_service_time",
    "greedy_partitioning",
    "key_partitioning",
    "memory_report",
    "merge_sources",
    "operator_capacity",
    "partition_shares",
    "stable_key_hash",
    "plan_fusion",
    "predict_checkpoint",
    "predict_sharding",
    "predicted_throughput",
    "validate_fusion",
    "waiting_time",
]
