"""Automatic operator fusion (extension, paper §7).

The paper leaves fusion selection to the user ("fusion is not yet an
automatized process in SpinStreams") and lists automating it as future
work: "make SpinStreams able to automatically choose the best sub-graph
suitable for fusion without manual intervention".  This module
implements that loop:

1. analyze the topology and enumerate the valid fusion candidates
   (single front-end, acyclic contraction) below a utilization
   threshold;
2. keep only the *safe* candidates — those whose fused operator is
   predicted to stay below a configurable utilization headroom, so the
   merge can never become a bottleneck;
3. greedily apply the candidate that removes the most operators
   (ties: lowest predicted utilization), then re-analyze and repeat
   until no safe candidate remains.

Fused operators are themselves fusion candidates in later rounds, so
long under-utilized chains collapse across iterations.  The result
carries every applied :class:`~repro.core.fusion.FusionPlan`, ready for
the runtime and the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import FrozenSet, List, Mapping, Optional, Tuple

from repro.core.candidates import FusionCandidate, enumerate_candidates
from repro.core.fusion import FusionPlan, FusionResult, apply_fusion
from repro.core.graph import BatchConfig, Topology, TopologyError
from repro.core.solver import BatchingPrediction, analyze_cached, predict_batching
from repro.core.steady_state import SteadyStateResult

#: Default grid of the batch-size search — powers of two up to the
#: point where the amortized hop (``h/b``) is deep in diminishing
#: returns for any realistic hop overhead.
DEFAULT_BATCH_GRID: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class AutoFusionResult:
    """Outcome of the automatic fusion loop."""

    original: Topology
    fused: Topology
    steps: Tuple[FusionResult, ...]
    analysis: SteadyStateResult
    #: Per-edge batch sizes chosen by the optional grid search
    #: (``auto_fuse(batch_search=True)``); None when not requested.
    batching: Optional["BatchSizeChoice"] = None

    @property
    def plans(self) -> List[FusionPlan]:
        return [step.plan for step in self.steps]

    @property
    def operators_removed(self) -> int:
        """Net reduction in operator count."""
        return len(self.original) - len(self.fused)

    @property
    def throughput(self) -> float:
        return self.analysis.throughput

    @property
    def rounds(self) -> int:
        return len(self.steps)

    def executions(self, utilization_threshold: Optional[float] = None):
        """Loop-compiled vs meta-actor choice per fused vertex.

        Applies :func:`repro.codegen.fuseloop.choose_execution` to every
        applied plan using this result's final analysis (the solver
        utilization numbers) and the original topology's operator
        classes for the SS2xx purity gate.  Plans whose members are
        themselves fused vertices (multi-round collapses) conservatively
        stay on the meta-actor.  Returns ``{fused_name:
        ExecutionChoice}``.
        """
        from repro.codegen.fuseloop import (
            DEFAULT_UTILIZATION_THRESHOLD,
            choose_execution,
        )
        if utilization_threshold is None:
            utilization_threshold = DEFAULT_UTILIZATION_THRESHOLD
        return {
            plan.fused_name: choose_execution(
                plan, self.original, analysis=self.analysis,
                utilization_threshold=utilization_threshold,
            )
            for plan in self.plans
        }


@dataclass(frozen=True)
class BatchSizeChoice:
    """Outcome of the per-edge batch-size grid search.

    ``per_edge`` maps ``(source, target)`` to the chosen batch size;
    ``batched`` is the input topology with those choices materialized
    as ``Edge.batch`` overrides, ready for the runtime or the
    deployment plan.  ``prediction`` prices the final assignment.
    """

    grid: Tuple[int, ...]
    global_size: int
    per_edge: Mapping[Tuple[str, str], int]
    batched: Topology
    prediction: BatchingPrediction
    refined: bool

    @property
    def throughput(self) -> float:
        return self.prediction.throughput

    @property
    def throughput_gain(self) -> float:
        """Chosen-over-unbatched predicted throughput."""
        return self.prediction.throughput_gain


def search_batch_sizes(
    topology: Topology,
    hop_overhead: float,
    grid: Tuple[int, ...] = DEFAULT_BATCH_GRID,
    flush_timeout: Optional[float] = None,
    source_rate: Optional[float] = None,
    latency_budget: Optional[float] = None,
    refine_edges: bool = True,
    rel_improvement: float = 0.01,
) -> BatchSizeChoice:
    """Pick per-edge mailbox batch sizes from a small analytical grid.

    Two phases, both priced by :func:`~repro.core.solver.
    predict_batching` (no execution involved):

    1. **Global sweep** — evaluate every size in ``grid`` applied
       uniformly; keep the *smallest* size whose predicted throughput
       is within ``rel_improvement`` of the best (batching buys
       throughput at a latency price, so ties go to the lower-latency
       side).
    2. **Per-edge refinement** (``refine_edges``) — one coordinate-
       descent pass over the edges in topology order: re-try every grid
       size on each edge while holding the others fixed, keeping a
       change only if it improves predicted throughput by more than
       ``rel_improvement``.  This is where a hot edge earns a deeper
       batch than the cheap edges around it.

    ``latency_budget`` (seconds) rejects any assignment whose mean
    added batching delay exceeds it.  Edges carrying an explicit
    ``Edge.batch`` override are respected and never re-chosen.
    """
    if not grid:
        raise TopologyError("batch-size grid must not be empty")
    if any(size < 1 for size in grid):
        raise TopologyError(f"batch sizes must be >= 1, got {grid}")
    grid = tuple(sorted(set(grid)))

    def admissible(prediction: BatchingPrediction) -> bool:
        return (latency_budget is None
                or prediction.mean_added_latency <= latency_budget)

    def price(assignment: Mapping[Tuple[str, str], int]
              ) -> Tuple[Topology, BatchingPrediction]:
        edges = []
        for edge in topology.edges:
            size = assignment[(edge.source, edge.target)]
            if edge.batch is None:
                batch = None if size == 1 else BatchConfig(
                    size=size,
                    flush_timeout=(flush_timeout if flush_timeout is not None
                                   else BatchConfig().flush_timeout))
                edge = dc_replace(edge, batch=batch)
            edges.append(edge)
        candidate = Topology(list(topology.operators), edges,
                             name=topology.name,
                             checkpoint=topology.checkpoint,
                    latency_budget=topology.latency_budget)
        prediction = predict_batching(
            candidate, batch_size=1, hop_overhead=hop_overhead,
            flush_timeout=flush_timeout, source_rate=source_rate)
        return candidate, prediction

    free_edges = [(edge.source, edge.target) for edge in topology.edges
                  if edge.batch is None]

    # Phase 1: uniform sweep, smallest size within tolerance of best.
    swept: List[Tuple[int, Topology, BatchingPrediction]] = []
    for size in grid:
        batched, prediction = price({key: size for key in free_edges}
                                    | {(e.source, e.target): 0
                                       for e in topology.edges
                                       if e.batch is not None})
        if admissible(prediction):
            swept.append((size, batched, prediction))
    if not swept:
        raise TopologyError(
            f"no batch size in {grid} satisfies the latency budget "
            f"{latency_budget}")
    best_throughput = max(entry[2].throughput for entry in swept)
    global_size, batched, prediction = next(
        entry for entry in swept
        if entry[2].throughput >= best_throughput * (1.0 - rel_improvement))

    assignment = {key: global_size for key in free_edges}
    refined = False
    if refine_edges and len(grid) > 1:
        for key in free_edges:
            current = assignment[key]
            for size in grid:
                if size == current:
                    continue
                trial = dict(assignment)
                trial[key] = size
                trial_topology, trial_prediction = price(
                    trial | {(e.source, e.target): 0
                             for e in topology.edges
                             if e.batch is not None})
                if (admissible(trial_prediction)
                        and trial_prediction.throughput
                        > prediction.throughput * (1.0 + rel_improvement)):
                    assignment = trial
                    batched, prediction = trial_topology, trial_prediction
                    refined = True
    return BatchSizeChoice(
        grid=grid,
        global_size=global_size,
        per_edge=dict(assignment),
        batched=batched,
        prediction=prediction,
        refined=refined,
    )


def auto_fuse(
    topology: Topology,
    source_rate: Optional[float] = None,
    max_size: int = 4,
    max_utilization: float = 0.75,
    headroom: float = 0.9,
    max_rounds: int = 32,
    code_safety: bool = True,
    batch_search: bool = False,
    hop_overhead: float = 0.0,
    batch_grid: Tuple[int, ...] = DEFAULT_BATCH_GRID,
    latency_budget: Optional[float] = None,
) -> AutoFusionResult:
    """Repeatedly fuse safe under-utilized sub-graphs.

    Parameters
    ----------
    topology:
        The topology to compact.
    source_rate:
        Source generation rate for the analyses (defaults to the source
        service rate).
    max_size:
        Maximum sub-graph size considered per round (fused operators
        can be re-fused, so chains longer than this still collapse).
    max_utilization:
        Only operators below this utilization are fusion material.
    headroom:
        Safety bound on the *fused* operator's predicted utilization; a
        merge is applied only if the new operator stays below it, which
        guarantees the throughput is preserved.
    max_rounds:
        Upper bound on fusion rounds (each round strictly shrinks the
        topology, so at most ``len(topology)`` rounds can ever apply).
    code_safety:
        When true (the default), operators whose code the static
        analyzer finds impure (nondeterminism or I/O — rules SS204 and
        SS206) are kept out of every fusion: merging them would change
        their scheduling and failure isolation.
    batch_search:
        After fusion converges, run :func:`search_batch_sizes` over
        ``batch_grid`` on the fused topology and attach the chosen
        per-edge batch sizes (``result.batching``).  Requires a
        positive ``hop_overhead`` to have any effect — with a free hop
        the model correctly picks batch size 1 everywhere.
    hop_overhead:
        Per-message mailbox hop cost (seconds) priced by the batching
        model; measure it with the mailbox microbenchmarks.
    batch_grid:
        Candidate batch sizes for the search.
    latency_budget:
        Optional cap (seconds) on the mean added batching delay.
    """
    if not 0.0 < headroom <= 1.0:
        raise TopologyError(f"headroom must be in (0, 1], got {headroom}")

    impure: FrozenSet[str] = frozenset()
    if code_safety:
        from repro.analysis.opcode import impure_operators

        impure = impure_operators(topology)

    current = topology
    steps: List[FusionResult] = []
    baseline = analyze_cached(topology, source_rate=source_rate)

    # Same request structure as the naive loop (analyze every round,
    # before/after per fusion), but the memoized solver answers the
    # round-top and final requests from cache and ``apply_fusion``
    # re-solves only the fused operator's downstream cone — a round
    # costs O(edit) fixed-point work instead of O(topology).
    for _ in range(max_rounds):
        analysis = analyze_cached(current, source_rate=source_rate)
        candidates = enumerate_candidates(
            current, analysis=analysis, max_size=max_size,
            max_utilization=max_utilization, limit=None,
            exclude=impure,
        )
        choice = _pick(candidates, headroom)
        if choice is None:
            break
        result = apply_fusion(current, choice.members,
                              source_rate=source_rate, analysis=analysis)
        if result.impairs_performance:
            # The candidate scoring is an estimate; the full analysis is
            # authoritative.  Skip candidates the analysis rejects.
            safe_candidates = [
                c for c in candidates
                if c is not choice and c.predicted_utilization <= headroom
            ]
            fallback = _first_harmless(current, safe_candidates,
                                       source_rate, analysis)
            if fallback is None:
                break
            result = fallback
        steps.append(result)
        current = result.fused

    final = analyze_cached(current, source_rate=source_rate)
    if final.throughput < baseline.throughput * (1.0 - 1e-9):
        raise TopologyError(
            "auto-fusion degraded the predicted throughput; this is a bug "
            "in the candidate safety screen"
        )
    batching: Optional[BatchSizeChoice] = None
    if batch_search:
        batching = search_batch_sizes(
            current, hop_overhead, grid=batch_grid,
            source_rate=source_rate, latency_budget=latency_budget,
        )
    return AutoFusionResult(
        original=topology,
        fused=current,
        steps=tuple(steps),
        analysis=final,
        batching=batching,
    )


def _pick(candidates: List[FusionCandidate],
          headroom: float) -> Optional[FusionCandidate]:
    """Largest safe candidate; ties break on predicted utilization."""
    safe = [c for c in candidates if c.predicted_utilization <= headroom]
    if not safe:
        return None
    return min(safe, key=lambda c: (-len(c.members),
                                    c.predicted_utilization, c.members))


def _first_harmless(topology: Topology,
                    candidates: List[FusionCandidate],
                    source_rate: Optional[float],
                    analysis: SteadyStateResult) -> Optional[FusionResult]:
    """First candidate whose full evaluation confirms no degradation."""
    ordered = sorted(candidates, key=lambda c: (-len(c.members),
                                                c.predicted_utilization,
                                                c.members))
    for candidate in ordered:
        result = apply_fusion(topology, candidate.members,
                              source_rate=source_rate, analysis=analysis)
        if not result.impairs_performance:
            return result
    return None
