"""Automatic operator fusion (extension, paper §7).

The paper leaves fusion selection to the user ("fusion is not yet an
automatized process in SpinStreams") and lists automating it as future
work: "make SpinStreams able to automatically choose the best sub-graph
suitable for fusion without manual intervention".  This module
implements that loop:

1. analyze the topology and enumerate the valid fusion candidates
   (single front-end, acyclic contraction) below a utilization
   threshold;
2. keep only the *safe* candidates — those whose fused operator is
   predicted to stay below a configurable utilization headroom, so the
   merge can never become a bottleneck;
3. greedily apply the candidate that removes the most operators
   (ties: lowest predicted utilization), then re-analyze and repeat
   until no safe candidate remains.

Fused operators are themselves fusion candidates in later rounds, so
long under-utilized chains collapse across iterations.  The result
carries every applied :class:`~repro.core.fusion.FusionPlan`, ready for
the runtime and the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.candidates import FusionCandidate, enumerate_candidates
from repro.core.fusion import FusionPlan, FusionResult, apply_fusion
from repro.core.graph import Topology, TopologyError
from repro.core.solver import analyze_cached
from repro.core.steady_state import SteadyStateResult


@dataclass(frozen=True)
class AutoFusionResult:
    """Outcome of the automatic fusion loop."""

    original: Topology
    fused: Topology
    steps: Tuple[FusionResult, ...]
    analysis: SteadyStateResult

    @property
    def plans(self) -> List[FusionPlan]:
        return [step.plan for step in self.steps]

    @property
    def operators_removed(self) -> int:
        """Net reduction in operator count."""
        return len(self.original) - len(self.fused)

    @property
    def throughput(self) -> float:
        return self.analysis.throughput

    @property
    def rounds(self) -> int:
        return len(self.steps)

    def executions(self, utilization_threshold: Optional[float] = None):
        """Loop-compiled vs meta-actor choice per fused vertex.

        Applies :func:`repro.codegen.fuseloop.choose_execution` to every
        applied plan using this result's final analysis (the solver
        utilization numbers) and the original topology's operator
        classes for the SS2xx purity gate.  Plans whose members are
        themselves fused vertices (multi-round collapses) conservatively
        stay on the meta-actor.  Returns ``{fused_name:
        ExecutionChoice}``.
        """
        from repro.codegen.fuseloop import (
            DEFAULT_UTILIZATION_THRESHOLD,
            choose_execution,
        )
        if utilization_threshold is None:
            utilization_threshold = DEFAULT_UTILIZATION_THRESHOLD
        return {
            plan.fused_name: choose_execution(
                plan, self.original, analysis=self.analysis,
                utilization_threshold=utilization_threshold,
            )
            for plan in self.plans
        }


def auto_fuse(
    topology: Topology,
    source_rate: Optional[float] = None,
    max_size: int = 4,
    max_utilization: float = 0.75,
    headroom: float = 0.9,
    max_rounds: int = 32,
    code_safety: bool = True,
) -> AutoFusionResult:
    """Repeatedly fuse safe under-utilized sub-graphs.

    Parameters
    ----------
    topology:
        The topology to compact.
    source_rate:
        Source generation rate for the analyses (defaults to the source
        service rate).
    max_size:
        Maximum sub-graph size considered per round (fused operators
        can be re-fused, so chains longer than this still collapse).
    max_utilization:
        Only operators below this utilization are fusion material.
    headroom:
        Safety bound on the *fused* operator's predicted utilization; a
        merge is applied only if the new operator stays below it, which
        guarantees the throughput is preserved.
    max_rounds:
        Upper bound on fusion rounds (each round strictly shrinks the
        topology, so at most ``len(topology)`` rounds can ever apply).
    code_safety:
        When true (the default), operators whose code the static
        analyzer finds impure (nondeterminism or I/O — rules SS204 and
        SS206) are kept out of every fusion: merging them would change
        their scheduling and failure isolation.
    """
    if not 0.0 < headroom <= 1.0:
        raise TopologyError(f"headroom must be in (0, 1], got {headroom}")

    impure: FrozenSet[str] = frozenset()
    if code_safety:
        from repro.analysis.opcode import impure_operators

        impure = impure_operators(topology)

    current = topology
    steps: List[FusionResult] = []
    baseline = analyze_cached(topology, source_rate=source_rate)

    # Same request structure as the naive loop (analyze every round,
    # before/after per fusion), but the memoized solver answers the
    # round-top and final requests from cache and ``apply_fusion``
    # re-solves only the fused operator's downstream cone — a round
    # costs O(edit) fixed-point work instead of O(topology).
    for _ in range(max_rounds):
        analysis = analyze_cached(current, source_rate=source_rate)
        candidates = enumerate_candidates(
            current, analysis=analysis, max_size=max_size,
            max_utilization=max_utilization, limit=None,
            exclude=impure,
        )
        choice = _pick(candidates, headroom)
        if choice is None:
            break
        result = apply_fusion(current, choice.members,
                              source_rate=source_rate, analysis=analysis)
        if result.impairs_performance:
            # The candidate scoring is an estimate; the full analysis is
            # authoritative.  Skip candidates the analysis rejects.
            safe_candidates = [
                c for c in candidates
                if c is not choice and c.predicted_utilization <= headroom
            ]
            fallback = _first_harmless(current, safe_candidates,
                                       source_rate, analysis)
            if fallback is None:
                break
            result = fallback
        steps.append(result)
        current = result.fused

    final = analyze_cached(current, source_rate=source_rate)
    if final.throughput < baseline.throughput * (1.0 - 1e-9):
        raise TopologyError(
            "auto-fusion degraded the predicted throughput; this is a bug "
            "in the candidate safety screen"
        )
    return AutoFusionResult(
        original=topology,
        fused=current,
        steps=tuple(steps),
        analysis=final,
    )


def _pick(candidates: List[FusionCandidate],
          headroom: float) -> Optional[FusionCandidate]:
    """Largest safe candidate; ties break on predicted utilization."""
    safe = [c for c in candidates if c.predicted_utilization <= headroom]
    if not safe:
        return None
    return min(safe, key=lambda c: (-len(c.members),
                                    c.predicted_utilization, c.members))


def _first_harmless(topology: Topology,
                    candidates: List[FusionCandidate],
                    source_rate: Optional[float],
                    analysis: SteadyStateResult) -> Optional[FusionResult]:
    """First candidate whose full evaluation confirms no degradation."""
    ordered = sorted(candidates, key=lambda c: (-len(c.members),
                                                c.predicted_utilization,
                                                c.members))
    for candidate in ordered:
        result = apply_fusion(topology, candidate.members,
                              source_rate=source_rate, analysis=analysis)
        if not result.impairs_performance:
            return result
    return None
