"""Steady-state latency estimation (extension beyond the paper).

The paper's cost models predict *throughput*; its introduction also
motivates latency reduction, and the fusion optimization explicitly
"saves communication latency".  This module closes the loop with a
static end-to-end latency estimate built on the same steady-state
analysis:

* per operator, the *residence time* is the mean service time plus a
  queueing-delay estimate.  Three service assumptions are supported:

  - ``deterministic`` — constant service and paced arrivals: no
    queueing below saturation;
  - ``markovian`` — an M/M/1-style estimate ``W = rho / (capacity -
    lambda)`` per vertex (exponential service, Poisson-ish arrivals);
  - ``md1`` — the M/D/1 Pollaczek–Khinchine mean, half the markovian
    wait (deterministic service, Poisson arrivals);

  in every case the wait is capped by the time a *full* mailbox takes
  to drain, ``B / capacity``, which is also the estimate used for
  saturated (backpressured) operators whose queue is permanently full;

* end to end, residencies accumulate along the paths of the topology
  weighted by the routing probabilities — the same path machinery as
  Theorem 3.2 — giving the expected source-to-sink latency.

Estimates of this kind are approximations (arrival processes inside a
blocking network are not Poisson), so the accompanying tests and the
``benchmarks/test_ext_latency.py`` benchmark validate them against the
item-level timestamps measured by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.graph import Topology, TopologyError
from repro.core.steady_state import SteadyStateResult, analyze

_ASSUMPTIONS = ("deterministic", "markovian", "md1")

#: Utilizations above this are treated as saturated (full buffer).
_SATURATION = 1.0 - 1e-6


@dataclass(frozen=True)
class OperatorLatency:
    """Latency components of one operator at steady state."""

    name: str
    service_time: float
    waiting_time: float
    utilization: float

    @property
    def residence_time(self) -> float:
        """Mean time an item spends at this operator (wait + service)."""
        return self.waiting_time + self.service_time


@dataclass(frozen=True)
class LatencyEstimate:
    """Static latency estimate of a whole topology."""

    topology: Topology
    assumption: str
    operators: Mapping[str, OperatorLatency]
    sink_latencies: Mapping[str, float]
    end_to_end: float

    def residence_time(self, name: str) -> float:
        return self.operators[name].residence_time

    def waiting_time(self, name: str) -> float:
        return self.operators[name].waiting_time


def waiting_time(
    utilization: float,
    arrival_rate: float,
    capacity: float,
    mailbox_capacity: int,
    assumption: str,
) -> float:
    """Queueing-delay estimate for one station.

    ``capacity`` is the aggregate service capacity (items/sec) of the
    operator including replication; ``mailbox_capacity`` bounds the
    wait at the full-buffer drain time, which is also the saturated
    estimate (BAS keeps the buffer of a bottleneck permanently full).
    """
    if assumption not in _ASSUMPTIONS:
        raise TopologyError(
            f"unknown latency assumption {assumption!r}; "
            f"choose from {_ASSUMPTIONS}"
        )
    if capacity <= 0.0:
        raise TopologyError("capacity must be positive")
    full_buffer_wait = mailbox_capacity / capacity
    if utilization >= _SATURATION:
        return full_buffer_wait
    if assumption == "deterministic":
        return 0.0
    slack = capacity - arrival_rate
    if slack <= 0.0:
        return full_buffer_wait
    wait = utilization / slack
    if assumption == "md1":
        wait /= 2.0
    return min(wait, full_buffer_wait)


def estimate_latency(
    topology: Topology,
    analysis: Optional[SteadyStateResult] = None,
    mailbox_capacity: int = 64,
    assumption: str = "markovian",
    source_rate: Optional[float] = None,
) -> LatencyEstimate:
    """Estimate per-operator and end-to-end latency of a topology.

    The end-to-end figure is the expected accumulated residence time of
    an item from its emission at the source to its consumption at a
    sink, averaged over the routing distribution (rate-weighted across
    sinks) — directly comparable to
    :meth:`repro.sim.network.SimulationResult.mean_latency`.
    """
    if analysis is None:
        analysis = analyze(topology, source_rate=source_rate)

    operators: Dict[str, OperatorLatency] = {}
    for spec in topology.operators:
        rates = analysis.rates[spec.name]
        if spec.name == topology.source:
            # The source has no input queue: its residence is service only.
            wait = 0.0
        else:
            wait = waiting_time(
                utilization=rates.utilization,
                arrival_rate=rates.arrival_rate,
                capacity=rates.capacity,
                mailbox_capacity=mailbox_capacity,
                assumption=assumption,
            )
        operators[spec.name] = OperatorLatency(
            name=spec.name,
            service_time=spec.service_time,
            waiting_time=wait,
            utilization=rates.utilization,
        )

    # Expected accumulated latency at the *output* of each vertex,
    # propagated in topological order with rate-weighted merging.
    accumulated: Dict[str, float] = {}
    for name in topology.topological_order():
        residence = operators[name].residence_time
        if name == topology.source:
            # Items are *born* when the source emits them: generation
            # time is not part of the end-to-end processing latency.
            accumulated[name] = 0.0
            continue
        inflow = 0.0
        weighted = 0.0
        for edge in topology.in_edges(name):
            rate = analysis.rates[edge.source].departure_rate * edge.probability
            inflow += rate
            weighted += rate * accumulated[edge.source]
        upstream = weighted / inflow if inflow > 0.0 else 0.0
        accumulated[name] = upstream + residence

    sink_latencies = {name: accumulated[name] for name in topology.sinks}
    total_rate = sum(
        analysis.rates[name].departure_rate + (
            # Pure sinks (zero output selectivity) still consume items;
            # weight them by consumption instead.
            analysis.rates[name].arrival_rate
            if analysis.rates[name].departure_rate == 0.0 else 0.0
        )
        for name in topology.sinks
    )
    if total_rate > 0.0:
        end_to_end = 0.0
        for name in topology.sinks:
            rates = analysis.rates[name]
            weight = rates.departure_rate or rates.arrival_rate
            end_to_end += sink_latencies[name] * weight / total_rate
    else:  # pragma: no cover - degenerate topology with dead sinks
        end_to_end = max(sink_latencies.values(), default=0.0)

    return LatencyEstimate(
        topology=topology,
        assumption=assumption,
        operators=operators,
        sink_latencies=sink_latencies,
        end_to_end=end_to_end,
    )
