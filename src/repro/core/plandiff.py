"""Plan diffing: deployed plan vs freshly re-solved plan → minimal actions.

The adaptive controller (:mod:`repro.runtime.adaptive`) closes the
paper's loop: measured per-operator service times and gains flow back
into the steady-state solver, which re-runs bottleneck elimination
(Algorithm 2) against the *measured* topology.  This module is the pure
functional core of that loop — no threads, no wall clock — so every
controller decision is a deterministic function of the measurements it
was handed, replayable in tests.

``replan`` returns a :class:`PlanDiff`: the re-solved target plan, the
analytical throughput of the *current* deployment under the measured
rates (via the memoized solver, so repeated control periods with
unchanged measurements cost nothing), and the minimal list of
:class:`ReplicaChange` actions that turns the current deployment into
the target.  The controller applies hysteresis on top (predicted gain
margins, cooldowns); this module just states the facts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import Topology
from repro.core.solver import analyze_cached
from repro.core.steady_state import SteadyStateResult


@dataclass(frozen=True)
class VertexMeasurement:
    """A confident online estimate of one operator's true parameters.

    ``service_time`` and ``gain`` are ``None`` when the estimator had
    no confident value for that dimension (the spec's declared value is
    kept).  ``samples`` records how many processed items back the
    estimate, for decision logs.
    """

    vertex: str
    service_time: Optional[float] = None
    gain: Optional[float] = None
    samples: int = 0


@dataclass(frozen=True)
class ReplicaChange:
    """One minimal reconfiguration action: resize a vertex's replicas."""

    vertex: str
    before: int
    after: int

    @property
    def delta(self) -> int:
        return self.after - self.before


@dataclass(frozen=True)
class PlanDiff:
    """The re-solved plan next to the one currently deployed."""

    #: Topology carrying the measured service times / selectivities
    #: (replication reset by the re-solve; see ``target``).
    measured: Topology
    #: The freshly re-solved plan over the measured topology.
    target: Topology
    #: Steady state of the *current* deployment under measured rates.
    current_analysis: SteadyStateResult
    #: Steady state of the re-solved target plan.
    target_analysis: SteadyStateResult
    #: Minimal replica resizes turning current into target (scalable
    #: vertices only, deterministic topological order).
    actions: Tuple[ReplicaChange, ...]

    @property
    def predicted_gain(self) -> float:
        """Relative throughput gain of adopting the target plan."""
        current = self.current_analysis.throughput
        if current <= 0.0:
            return float("inf") if self.target_analysis.throughput > 0.0 else 0.0
        return (self.target_analysis.throughput - current) / current

    @property
    def replica_delta(self) -> int:
        """Net replicas added (negative: freed) by the actions."""
        return sum(action.delta for action in self.actions)


def apply_measurements(
    topology: Topology,
    measurements: Mapping[str, VertexMeasurement],
) -> Topology:
    """A copy of ``topology`` with measured parameters substituted.

    A measured gain updates ``output_selectivity`` under the profiler's
    adoption rule (``gain * input_selectivity``), mirroring
    :meth:`repro.profiling.ProfileReport.profiled_topology`.
    """
    edited = topology
    for spec in topology.operators:
        measurement = measurements.get(spec.name)
        if measurement is None:
            continue
        updated = spec
        if measurement.service_time is not None and measurement.service_time > 0:
            updated = updated.with_service_time(measurement.service_time)
        if measurement.gain is not None and measurement.gain >= 0 \
                and spec.name != topology.source and spec.output_selectivity > 0:
            updated = replace(
                updated,
                output_selectivity=measurement.gain * updated.input_selectivity,
            )
        if updated is not spec:
            edited = edited.with_operator(updated)
    return edited


def diff_replicas(
    topology: Topology,
    current: Mapping[str, int],
    target: Mapping[str, int],
    scalable: Optional[Sequence[str]] = None,
) -> Tuple[ReplicaChange, ...]:
    """Minimal replica resizes from ``current`` to ``target``.

    Restricted to ``scalable`` vertices when given (the live system can
    only resize stateless ensembles); emitted in topological order so
    upstream capacity grows before downstream demand shifts.
    """
    allowed = None if scalable is None else set(scalable)
    actions = []
    for name in topology.names:
        if allowed is not None and name not in allowed:
            continue
        before = current.get(name, 1)
        after = target.get(name, 1)
        if before != after:
            actions.append(ReplicaChange(name, before, after))
    return tuple(actions)


def replan(
    topology: Topology,
    current_replications: Mapping[str, int],
    measurements: Mapping[str, VertexMeasurement],
    source_rate: Optional[float] = None,
    max_replicas: Optional[int] = None,
    scalable: Optional[Sequence[str]] = None,
) -> PlanDiff:
    """Re-solve the plan under measured rates and diff it vs current.

    ``topology`` is the *deployed* logical topology (replications as
    declared); ``current_replications`` what the live system actually
    runs right now.  The re-solve uses ``code_safety="off"`` — the
    scalable set already restricts actions to vertices the runtime
    proved safe to replicate when it built their ensembles.
    """
    measured = apply_measurements(topology, measurements)
    result = eliminate_bottlenecks(
        measured,
        source_rate=source_rate,
        max_replicas=max_replicas,
        code_safety="off",
    )
    target_reps: Dict[str, int] = dict(result.replications)
    if scalable is not None:
        allowed = set(scalable)
        target_reps = {
            name: (degree if name in allowed
                   else current_replications.get(name, 1))
            for name, degree in target_reps.items()
        }
    deployed = measured.with_replications(dict(current_replications))
    current_analysis = analyze_cached(deployed, source_rate=source_rate)
    target = measured.with_replications(target_reps)
    target_analysis = (result.analysis
                       if target_reps == result.replications
                       else analyze_cached(target, source_rate=source_rate))
    actions = diff_replicas(topology, current_replications, target_reps,
                            scalable=scalable)
    return PlanDiff(
        measured=measured,
        target=target,
        current_analysis=current_analysis,
        target_analysis=target_analysis,
        actions=actions,
    )
