"""Enumeration and ranking of fusion candidates (paper Section 4.1).

After the steady-state analysis the tool proposes sub-graphs suitable
for fusion, "ranked by their utilization factor in order to ease the
process of selection".  This module enumerates the connected sub-graphs
that satisfy the structural fusion constraints (single front-end,
acyclic contraction) and ranks them by the mean utilization of their
members — the lower the utilization, the more the merge saves
scheduling overhead without risking a new bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.fusion import FusionError, fusion_service_time, validate_fusion
from repro.core.graph import Topology
from repro.core.solver import analyze_cached
from repro.core.steady_state import SteadyStateResult


@dataclass(frozen=True)
class FusionCandidate:
    """A valid fusion sub-graph with its ranking metrics."""

    members: Tuple[str, ...]
    front_end: str
    mean_utilization: float
    max_utilization: float
    predicted_service_time: float
    predicted_utilization: float

    @property
    def safe(self) -> bool:
        """Whether the fused operator is predicted to stay below 1."""
        return self.predicted_utilization <= 1.0


def enumerate_candidates(
    topology: Topology,
    analysis: Optional[SteadyStateResult] = None,
    max_size: int = 4,
    max_utilization: float = 0.75,
    limit: Optional[int] = 20,
    exclude: Optional[Iterable[str]] = None,
) -> List[FusionCandidate]:
    """Enumerate ranked fusion candidates.

    Parameters
    ----------
    topology:
        The topology to inspect.
    analysis:
        An existing steady-state analysis to reuse (resolved through the
        memoized solver when omitted).
    max_size:
        Maximum number of operators in a candidate sub-graph; candidate
        enumeration grows exponentially, but streaming topologies have
        tens of operators at most (Section 3.3) so small sizes suffice.
    max_utilization:
        Only operators below this utilization are considered for fusion.
    limit:
        Return at most this many candidates (best ranked first).
    exclude:
        Operator names to keep out of every candidate (e.g. operators
        the code analyzer found impure — fusing them would change
        their scheduling and failure isolation).
    """
    if analysis is None:
        analysis = analyze_cached(topology)
    eligible = {
        name
        for name in topology.names
        if name != topology.source
        and analysis.utilization(name) <= max_utilization
    }
    if exclude:
        eligible -= set(exclude)

    seen: Set[FrozenSet[str]] = set()
    found: List[FusionCandidate] = []
    for seed in sorted(eligible):
        _grow(topology, analysis, frozenset({seed}), eligible, max_size,
              seen, found)

    found.sort(key=lambda c: (c.mean_utilization, -len(c.members), c.members))
    if limit is not None:
        return found[:limit]
    return found


def _grow(
    topology: Topology,
    analysis: SteadyStateResult,
    members: FrozenSet[str],
    eligible: Set[str],
    max_size: int,
    seen: Set[FrozenSet[str]],
    found: List[FusionCandidate],
) -> None:
    """Depth-first growth of connected sub-graphs over eligible vertices."""
    if members in seen:
        return
    seen.add(members)

    if len(members) >= 2:
        candidate = _evaluate(topology, analysis, members)
        if candidate is not None:
            found.append(candidate)

    if len(members) >= max_size:
        return
    frontier = set()
    for name in members:
        frontier.update(topology.successors(name))
        frontier.update(topology.predecessors(name))
    for neighbour in sorted(frontier & eligible - members):
        _grow(topology, analysis, members | {neighbour}, eligible, max_size,
              seen, found)


def _evaluate(
    topology: Topology,
    analysis: SteadyStateResult,
    members: FrozenSet[str],
) -> Optional[FusionCandidate]:
    """Score one sub-graph, or ``None`` if it violates the constraints."""
    ordered = tuple(sorted(members))
    try:
        front_end = validate_fusion(topology, ordered)
    except FusionError:
        return None
    utils = [analysis.utilization(name) for name in ordered]
    service_time = fusion_service_time(topology, members, front_end)
    # Predicted utilization of the fused operator: it inherits the
    # arrival rate of the front-end (the only entry point).
    arrival = analysis.arrival_rate(front_end)
    predicted_utilization = arrival * service_time
    return FusionCandidate(
        members=ordered,
        front_end=front_end,
        mean_utilization=sum(utils) / len(utils),
        max_utilization=max(utils),
        predicted_service_time=service_time,
        predicted_utilization=predicted_utilization,
    )
