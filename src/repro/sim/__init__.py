"""Discrete-event simulation of blocking queueing networks.

The simulated counterpart of the paper's Akka testbed: bounded
mailboxes, Blocking-After-Service backpressure, replicated stations and
probabilistic routing, all in virtual time.  See
:func:`repro.sim.simulate` for the one-call entry point.
"""

from repro.sim.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    LogNormal,
    Uniform,
    make_distribution,
)
from repro.sim.cyclic import (
    CyclicSimulationResult,
    build_cyclic_engine,
    simulate_cyclic,
)
from repro.sim.engine import (
    Engine,
    Measurements,
    SimulationError,
    Station,
    StationMeasurement,
    VertexMeasurement,
)
from repro.sim.network import (
    SimulationConfig,
    SimulationResult,
    build_engine,
    measured_edge_probabilities,
    simulate,
)

__all__ = [
    "CyclicSimulationResult",
    "Deterministic",
    "Distribution",
    "Engine",
    "build_cyclic_engine",
    "simulate_cyclic",
    "Erlang",
    "Exponential",
    "LogNormal",
    "Measurements",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "Station",
    "StationMeasurement",
    "Uniform",
    "VertexMeasurement",
    "build_engine",
    "make_distribution",
    "measured_edge_probabilities",
    "simulate",
]
