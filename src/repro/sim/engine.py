"""Event-driven simulator of blocking queueing networks (BAS semantics).

This is the measurement substrate standing in for the paper's Akka
deployment: each operator is a station with a bounded FIFO queue
(the actor's ``BoundedMailbox``) served by one or more servers
(replicas).  The network implements Blocking-After-Service exactly as
modeled in Section 3: after serving an item a station delivers the
results downstream one by one, and if a destination queue is full the
sending server *blocks*, unable to serve further items, until the
destination frees a slot — the freed slot is handed to the
longest-waiting blocked sender (FIFO wakeup).

The simulator runs in virtual time, so measuring the steady state of a
topology takes milliseconds of wall-clock time instead of the minutes a
real deployment needs.  Service-time distributions are pluggable (see
:mod:`repro.sim.distributions`); with deterministic services the
measured rates converge to the fluid-model predictions, and stochastic
services quantify how robust the predictions are (the paper's claim
that flow conservation is distribution-agnostic).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector, VertexSchedule
from repro.runtime.supervision import (
    BlockedActor,
    Directive,
    RestartTracker,
    SupervisionEvent,
    SupervisionLog,
    SupervisionPolicy,
    SupervisorStrategy,
    DeadLetterSink,
    WatchdogReport,
    find_blocked_cycle,
)
from repro.instrumentation import ENGINE as ENGINE_COUNTERS
from repro.sim.distributions import Deterministic, Distribution

_IDLE = 0
_BUSY = 1
_BLOCKED = 2


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Server:
    """One replica executor of a station (an actor in Akka terms)."""

    __slots__ = ("station", "index", "state", "pending", "pending_pos",
                 "blocked_since", "item_birth", "fail_action", "restarting")

    def __init__(self, station: "Station", index: int) -> None:
        self.station = station
        self.index = index
        self.state = _IDLE
        self.pending: List["Station"] = []
        self.pending_pos = 0
        self.blocked_since = 0.0
        #: Timestamp at which the item being served left the source;
        #: outputs inherit it so sinks can measure end-to-end latency.
        self.item_birth = 0.0
        #: ``(kind, item_index)`` of an injected failure hitting the
        #: service in flight, handled by the supervisor at completion.
        self.fail_action: Optional[Tuple[str, int]] = None
        #: Whether the pending completion event is a restart downtime
        #: ending rather than a service ending.
        self.restarting = False


class Station:
    """A queueing station: bounded FIFO queue plus ``n`` servers.

    A station maps to one abstract operator (or to one replica group of
    a partitioned-stateful operator, see :class:`PartitionedRouter`).
    """

    __slots__ = (
        "name", "vertex", "dist", "gain", "capacity", "servers",
        "idle_servers", "queue", "waiters", "is_source",
        "det_service", "route_targets", "simple",
        "routes", "route_probs", "route_cum", "route_deficit", "credits",
        "arrivals", "consumed", "emitted", "dropped",
        "busy_time", "blocked_time",
        "edge_counts", "wait_sum", "wait_count",
        "latency_sum", "latency_count", "latency_max",
        "schedule", "item_index", "offered", "shed",
        "failed", "restarts", "stopped", "policy", "tracker",
    )

    def __init__(
        self,
        name: str,
        vertex: str,
        dist: Distribution,
        gain: float,
        capacity: int,
        n_servers: int,
        is_source: bool = False,
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"station {name!r}: capacity must be >= 1")
        if n_servers < 1:
            raise SimulationError(f"station {name!r}: needs >= 1 server")
        self.name = name
        self.vertex = vertex
        self.dist = dist
        #: Constant service time for zero-variance distributions; the
        #: fast path skips the sampling call (which consumes no RNG
        #: state for a Deterministic distribution, so skipping is exact).
        self.det_service: Optional[float] = (
            dist.mean if type(dist) is Deterministic else None)
        self.gain = gain
        self.capacity = capacity
        self.servers = [Server(self, i) for i in range(n_servers)]
        self.idle_servers: List[Server] = list(self.servers)
        self.queue: Deque[object] = deque()
        self.waiters: Deque[Server] = deque()
        self.is_source = is_source
        # Routing targets: parallel lists of resolvers and probabilities.
        self.routes: List[Callable[[random.Random], "Station"]] = []
        self.route_probs: List[float] = []
        #: Running sums of ``route_probs`` (same float partial sums the
        #: linear scan would produce), so stochastic route choice is a
        #: C-level bisect instead of a Python loop.
        self.route_cum: List[float] = []
        #: Statically known destination per route (``None`` when the
        #: resolver picks among replica sub-stations at run time).
        self.route_targets: List[Optional["Station"]] = []
        #: Unit gain + exactly one statically routed edge: every
        #: completion emits exactly one item to a known destination, so
        #: the fast loop skips credit accounting and route choice.
        #: Computed by the engine once the routes are wired.
        self.simple = False
        self.route_deficit: List[float] = []
        self.credits = 0.0
        self.arrivals = 0
        self.consumed = 0
        self.emitted = 0
        self.dropped = 0
        self.busy_time = 0.0
        self.blocked_time = 0.0
        self.edge_counts: List[int] = []
        # Queueing-delay accounting: time items spend in this queue.
        self.wait_sum = 0.0
        self.wait_count = 0
        # End-to-end latency samples, recorded at sink stations only.
        self.latency_sum = 0.0
        self.latency_count = 0
        self.latency_max = 0.0
        # Fault-injection state, wired by the engine when a fault plan
        # is active (see Engine.__init__).
        self.schedule: Optional[VertexSchedule] = None
        #: Logical clock: items whose service started here (the index
        #: axis that crash/poison/slowdown faults are expressed in).
        self.item_index = 0
        #: Delivery attempts at this station's queue (the index axis of
        #: injected mailbox drop windows).
        self.offered = 0
        #: Arrivals shed by an injected drop window.
        self.shed = 0
        #: Services that ended in an injected failure.
        self.failed = 0
        #: Restart directives applied to this station.
        self.restarts = 0
        #: Set when a Stop directive killed this station.
        self.stopped = False
        self.policy: Optional[SupervisionPolicy] = None
        self.tracker: Optional[RestartTracker] = None

    def add_route(self, resolver: Callable[[random.Random], "Station"],
                  probability: float) -> None:
        self.routes.append(resolver)
        self.route_probs.append(probability)
        self.route_cum.append((self.route_cum[-1] if self.route_cum
                               else 0.0) + probability)
        self.route_targets.append(getattr(resolver, "static_target", None))
        self.route_deficit.append(0.0)
        self.edge_counts.append(0)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.queue)


@dataclass
class StationCounters:
    """Snapshot of the counters of one station."""

    arrivals: int = 0
    consumed: int = 0
    emitted: int = 0
    dropped: int = 0
    busy_time: float = 0.0
    blocked_time: float = 0.0
    wait_sum: float = 0.0
    wait_count: int = 0
    latency_sum: float = 0.0
    latency_count: int = 0
    failed: int = 0
    restarts: int = 0
    shed: int = 0


class Engine:
    """The discrete-event loop driving a set of stations.

    Parameters
    ----------
    stations:
        All stations of the network (sources flagged with ``is_source``).
    seed:
        Seed of the private RNG used for service sampling and
        stochastic routing.
    routing:
        ``"stochastic"`` samples each destination independently;
        ``"proportional"`` uses deterministic weighted round-robin
        (largest-deficit-first), which converges to the edge
        probabilities with zero variance.
    fast_path:
        Process common events (plain service completions of healthy
        stations) through an inlined event loop instead of the general
        completion handler.  Behaviour is bit-identical either way —
        the flag exists so the equivalence is testable and the general
        handler stays the executable specification.
    """

    def __init__(
        self,
        stations: Sequence[Station],
        seed: int = 1,
        routing: str = "stochastic",
        backpressure: bool = True,
        faults: Optional[FaultInjector] = None,
        supervisor: Optional[SupervisorStrategy] = None,
        on_deadlock: str = "raise",
        fast_path: bool = True,
    ) -> None:
        if routing not in ("stochastic", "proportional"):
            raise SimulationError(f"unknown routing mode {routing!r}")
        if on_deadlock not in ("raise", "report"):
            raise SimulationError(f"unknown deadlock mode {on_deadlock!r}")
        self.stations = list(stations)
        self.rng = random.Random(seed)
        self.routing = routing
        #: BAS blocking (the paper's default) vs load shedding: with
        #: backpressure off, an item offered to a full queue is dropped
        #: instead of blocking the sender (Section 2's alternative
        #: communication semantics).
        self.backpressure = backpressure
        #: ``"raise"`` aborts a BAS deadlock with SimulationError (the
        #: historical behaviour); ``"report"`` records the blocked cycle
        #: as a WatchdogReport on the measurements and returns normally.
        self.on_deadlock = on_deadlock
        self.faults = faults
        self.supervisor = supervisor or SupervisorStrategy()
        #: Supervision decisions in virtual-time order; with the same
        #: fault-plan seed, two runs produce identical signatures.
        self.supervision = SupervisionLog()
        self.dead_letters = DeadLetterSink()
        self.deadlock: Optional[WatchdogReport] = None
        self._halted = False
        self.halt_reason: Optional[str] = None
        for station in self.stations:
            station.policy = self.supervisor.policy_for(station.vertex)
            station.tracker = RestartTracker(station.policy)
            station.simple = (station.gain == 1.0
                              and len(station.routes) == 1
                              and station.route_targets[0] is not None)
            if faults is not None:
                schedule = faults.schedule(station.vertex)
                if not schedule.empty:
                    station.schedule = schedule
        self.now = 0.0
        self._events: List[Tuple[float, int, Server]] = []
        self._seq = 0
        self._source_items: Optional[int] = None
        self.fast_path = fast_path
        #: Discrete events processed across all ``run`` calls.
        self.events_processed = 0

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------
    def _schedule_completion(self, server: Server) -> None:
        station = server.station
        schedule = station.schedule
        if schedule is not None:
            index = station.item_index
            station.item_index = index + 1
            action = schedule.action(index)
            if action is not None:
                # The failure surfaces the instant the operator function
                # is invoked: a zero-length "service" whose completion
                # the supervisor handles.
                server.fail_action = (action, index)
                self._seq += 1
                heappush(self._events, (self.now, self._seq, server))
                return
            duration = station.dist.sample(self.rng)
            factor = schedule.service_factor(index)
            if factor != 1.0:
                duration *= factor
            duration += schedule.hiccup_pause(index)
        else:
            duration = station.dist.sample(self.rng)
        station.busy_time += duration
        self._seq += 1
        heappush(self._events, (self.now + duration, self._seq, server))

    def _schedule_restart(self, server: Server, downtime: float) -> None:
        server.restarting = True
        self._seq += 1
        heappush(self._events, (self.now + downtime, self._seq, server))

    def run(self, until: float, warmup: float = 0.0,
            max_events: Optional[int] = None) -> "Measurements":
        """Run the network until virtual time ``until``.

        Counter snapshots taken at ``warmup`` exclude the transient from
        the measured rates.  Returns the per-station measurements.
        """
        if until <= 0.0:
            raise SimulationError(f"until must be positive, got {until}")
        if not 0.0 <= warmup < until:
            raise SimulationError(
                f"warmup must be in [0, until), got {warmup} vs {until}"
            )
        for station in self.stations:
            if station.is_source:
                self._start_source(station)
            else:
                self._start_services(station)

        snapshots: Dict[str, StationCounters] = {}
        snapped = warmup == 0.0
        if snapped:
            snapshots = self._snapshot()

        ENGINE_COUNTERS.runs += 1
        if self.fast_path:
            loop = self._fast_loop
        else:
            loop = self._reference_loop
        snapshots, snapped, drained = loop(until, warmup, max_events,
                                           snapshots, snapped)
        if drained:
            # The event heap drained before the horizon.  With a source
            # present this only happens when every server is blocked on
            # a full queue — a Blocking-After-Service deadlock, which
            # cyclic topologies can reach when the buffers along a loop
            # all fill up (see repro.sim.cyclic) — or when an Escalate
            # directive halted the engine.
            blocked_servers = [
                s
                for station in self.stations
                for s in station.servers if s.state == _BLOCKED
            ]
            if blocked_servers and not self._halted:
                entries = []
                edges: Dict[str, str] = {}
                for s in blocked_servers:
                    target = s.pending[s.pending_pos]
                    entries.append(BlockedActor(
                        actor=s.station.name,
                        vertex=s.station.vertex,
                        blocked_on=target.vertex,
                    ))
                    edges.setdefault(s.station.vertex, target.vertex)
                cycle = find_blocked_cycle(edges)
                self.deadlock = WatchdogReport(
                    verdict="deadlock" if cycle else "stall",
                    blocked=tuple(sorted(entries,
                                         key=lambda e: e.actor)),
                    cycle=cycle,
                )
                if self.on_deadlock == "raise":
                    blocked = sorted({e.actor for e in entries})
                    raise SimulationError(
                        "BAS deadlock: all activity stopped at t="
                        f"{self.now:.6f}s with blocked senders at "
                        f"{blocked}; increase the mailbox capacity or "
                        "reduce the feedback fraction"
                    )
        if not snapped:
            # Nothing happened before the warmup boundary (degenerate
            # run); measure over the full horizon instead.
            snapshots = {s.name: StationCounters() for s in self.stations}
            warmup = 0.0
        self.now = until
        return self._measure(snapshots, warmup, until)

    def _reference_loop(
        self,
        until: float,
        warmup: float,
        max_events: Optional[int],
        snapshots: Dict[str, StationCounters],
        snapped: bool,
    ) -> Tuple[Dict[str, StationCounters], bool, bool]:
        """The general event loop: one completion handler per event.

        This is the executable specification the fast loop is tested
        against (``Engine(..., fast_path=False)``); both produce
        bit-identical measurements, supervision logs and RNG streams.
        Returns ``(snapshots, snapped, drained)`` where ``drained``
        means the heap emptied before the horizon.
        """
        processed = 0
        drained = True
        while self._events:
            time, _, server = self._events[0]
            if time > until:
                drained = False
                break
            if not snapped and time >= warmup:
                self.now = warmup
                snapshots = self._snapshot()
                snapped = True
            heappop(self._events)
            self.now = time
            self._on_completion(server)
            processed += 1
            if max_events is not None and processed >= max_events:
                drained = False
                break
        ENGINE_COUNTERS.events += processed
        ENGINE_COUNTERS.slow_events += processed
        self.events_processed += processed
        return snapshots, snapped, drained

    def _fast_loop(
        self,
        until: float,
        warmup: float,
        max_events: Optional[int],
        snapshots: Dict[str, StationCounters],
        snapped: bool,
    ) -> Tuple[Dict[str, StationCounters], bool, bool]:
        """Inlined event loop for the dominant event shape.

        A "common" event is a plain service completion of a healthy
        station (no restart in flight, no injected failure, not
        stopped) that emits at most one output along a statically known
        or sampled route to a healthy destination.  Everything else —
        fault actions, restarts, stopped stations, fault-window
        deliveries, multi-output emissions — falls back to the general
        handlers, so the two loops stay behaviourally identical (there
        is a conformance test asserting bit-equality).

        The inlining removes five Python function calls plus their
        argument shuffling per event, which is the bulk of the engine's
        per-event cost (the actual state updates are a handful of list
        and float operations).
        """
        # Hot-loop locals: the engine state the fast branches touch is
        # mirrored into locals (``seq``, ``time``) and written back to
        # the instance around every fallback call and at loop exit, so
        # the general handlers always see current state.
        events = self._events
        rng = self.rng
        rng_random = rng.random
        push = heappush
        pop = heappop
        bisect = bisect_right
        stochastic = self.routing == "stochastic"
        backpressure = self.backpressure
        limit = max_events if max_events is not None else (1 << 62)
        seq = self._seq
        time = self.now
        processed = 0
        slow = 0
        drained = True
        while events:
            entry = pop(events)
            time = entry[0]
            if time > until:
                push(events, entry)
                drained = False
                break
            if not snapped and time >= warmup:
                self.now = warmup
                snapshots = self._snapshot()
                snapped = True
            server = entry[2]
            station = server.station
            processed += 1
            # Restarts, injected failures and stopped stations can only
            # exist on stations with a fault schedule, so fault-free
            # runs pay a single is-None test here.
            if station.schedule is not None and (
                    server.restarting or server.fail_action is not None
                    or station.stopped):
                slow += 1
                self._seq = seq
                self.now = time
                self._on_completion(server)
                seq = self._seq
                if processed >= limit:
                    drained = False
                    break
                continue
            station.consumed += 1
            if station.simple:
                # Pipeline common case — unit gain, one static edge:
                # no credit accounting, no route choice.
                if station.is_source:
                    server.item_birth = time
                station.emitted += 1
                station.edge_counts[0] += 1
                target = station.route_targets[0]
            else:
                routes = station.routes
                if station.is_source:
                    server.item_birth = time
                elif not routes:
                    # Sink: the item's journey ends here.
                    latency = time - server.item_birth
                    station.latency_sum += latency
                    station.latency_count += 1
                    if latency > station.latency_max:
                        station.latency_max = latency
                # --- inline _route: credits + route choice ---
                credits = station.credits + station.gain
                count = int(credits + 1e-9)
                station.credits = credits - count
                station.emitted += count
                target = None
                if count == 1 and routes:
                    n_routes = len(routes)
                    if n_routes == 1:
                        index = 0
                    elif stochastic:
                        index = bisect(station.route_cum, rng_random())
                        if index >= n_routes:
                            index = n_routes - 1
                    else:
                        deficit = station.route_deficit
                        for i, prob in enumerate(station.route_probs):
                            deficit[i] += prob
                        index = max(range(n_routes), key=deficit.__getitem__)
                        deficit[index] -= 1.0
                    station.edge_counts[index] += 1
                    target = station.route_targets[index]
                    if target is None:
                        target = routes[index](rng)
                elif count > 0 and routes:
                    # Multi-output emission (gain > 1): push via the
                    # general pending-list machinery.
                    if len(routes) == 1:
                        station.edge_counts[0] += count
                        resolved = station.route_targets[0]
                        outputs = ([resolved] * count
                                   if resolved is not None
                                   else [routes[0](rng)
                                         for _ in range(count)])
                    else:
                        outputs = []
                        for _ in range(count):
                            index = self._pick_route(station)
                            station.edge_counts[index] += 1
                            resolved = station.route_targets[index]
                            outputs.append(resolved if resolved is not None
                                           else routes[index](rng))
                    server.pending = outputs
                    server.pending_pos = 0
                    self._seq = seq
                    self.now = time
                    self._continue_push(server)
                    seq = self._seq
                    if processed >= limit:
                        drained = False
                        break
                    continue
            if target is not None:
                # --- inline single-item delivery ---
                # (a stopped target always has a schedule, see above)
                if target.schedule is not None:
                    server.pending = [target]
                    server.pending_pos = 0
                    self._seq = seq
                    self.now = time
                    self._continue_push(server)
                    seq = self._seq
                    if processed >= limit:
                        drained = False
                        break
                    continue
                if len(target.queue) < target.capacity \
                        and not target.waiters:
                    target.arrivals += 1
                    if target.idle_servers:
                        # The item is served immediately: enqueue plus
                        # dequeue at the same instant (zero wait).
                        target.wait_count += 1
                        peer = target.idle_servers.pop()
                        peer.state = _BUSY
                        peer.item_birth = server.item_birth
                        duration = target.det_service
                        if duration is None:
                            duration = target.dist.sample(rng)
                        target.busy_time += duration
                        seq += 1
                        push(events, (time + duration, seq, peer))
                    else:
                        target.queue.append((server.item_birth, time))
                elif not backpressure:
                    target.dropped += 1
                else:
                    server.state = _BLOCKED
                    server.blocked_since = time
                    server.pending = [target]
                    server.pending_pos = 0
                    target.waiters.append(server)
                    if processed >= limit:
                        drained = False
                        break
                    continue
            # --- the sender goes idle and picks up further work ---
            server.state = _IDLE
            station.idle_servers.append(server)
            if station.is_source:
                idle = station.idle_servers
                if station.schedule is None:
                    while idle:
                        peer = idle.pop()
                        peer.state = _BUSY
                        duration = station.det_service
                        if duration is None:
                            duration = station.dist.sample(rng)
                        station.busy_time += duration
                        seq += 1
                        push(events, (time + duration, seq, peer))
                else:
                    self._seq = seq
                    self.now = time
                    while idle:
                        peer = idle.pop()
                        peer.state = _BUSY
                        self._schedule_completion(peer)
                    seq = self._seq
            elif station.queue:
                if station.schedule is None and not station.waiters:
                    idle = station.idle_servers
                    queue = station.queue
                    while queue and idle:
                        birth, enqueued_at = queue.popleft()
                        station.wait_sum += time - enqueued_at
                        station.wait_count += 1
                        peer = idle.pop()
                        peer.state = _BUSY
                        peer.item_birth = birth
                        duration = station.det_service
                        if duration is None:
                            duration = station.dist.sample(rng)
                        station.busy_time += duration
                        seq += 1
                        push(events, (time + duration, seq, peer))
                else:
                    self._seq = seq
                    self.now = time
                    self._start_services(station)
                    seq = self._seq
            if processed >= limit:
                drained = False
                break
        self._seq = seq
        self.now = time
        ENGINE_COUNTERS.events += processed
        ENGINE_COUNTERS.fast_events += processed - slow
        ENGINE_COUNTERS.slow_events += slow
        self.events_processed += processed
        return snapshots, snapped, drained

    def _snapshot(self) -> Dict[str, StationCounters]:
        return {
            s.name: StationCounters(
                arrivals=s.arrivals,
                consumed=s.consumed,
                emitted=s.emitted,
                busy_time=s.busy_time,
                blocked_time=s.blocked_time,
                dropped=s.dropped,
                wait_sum=s.wait_sum,
                wait_count=s.wait_count,
                latency_sum=s.latency_sum,
                latency_count=s.latency_count,
                failed=s.failed,
                restarts=s.restarts,
                shed=s.shed,
            )
            for s in self.stations
        }

    # ------------------------------------------------------------------
    # station dynamics
    # ------------------------------------------------------------------
    def _start_source(self, station: Station) -> None:
        """A source serves a fictitious infinite input stream."""
        if station.stopped:
            return
        idle = station.idle_servers
        if station.schedule is None:
            now = self.now
            events = self._events
            while idle:
                server = idle.pop()
                server.state = _BUSY
                duration = station.det_service
                if duration is None:
                    duration = station.dist.sample(self.rng)
                station.busy_time += duration
                self._seq += 1
                heappush(events, (now + duration, self._seq, server))
        else:
            while idle:
                server = idle.pop()
                server.state = _BUSY
                self._schedule_completion(server)

    def _start_services(self, station: Station) -> None:
        """Assign queued items to idle servers, waking blocked senders."""
        if station.stopped:
            return
        queue = station.queue
        idle = station.idle_servers
        schedule = station.schedule
        while queue and idle:
            birth, enqueued_at = queue.popleft()
            station.wait_sum += self.now - enqueued_at
            station.wait_count += 1
            if station.waiters:
                # Inline _backfill + the waiter's idle transition for
                # the common single-pending waiter (a blocked sender
                # holding exactly the one item it could not deliver).
                waiter = station.waiters.popleft()
                queue.append((waiter.item_birth, self.now))
                station.arrivals += 1
                waiter.pending_pos += 1
                wstation = waiter.station
                wstation.blocked_time += self.now - waiter.blocked_since
                if waiter.pending_pos >= len(waiter.pending):
                    waiter.pending = []
                    waiter.pending_pos = 0
                    waiter.state = _IDLE
                    wstation.idle_servers.append(waiter)
                    if not wstation.is_source:
                        if wstation.queue:
                            self._start_services(wstation)
                    elif wstation.schedule is None \
                            and not wstation.stopped:
                        widle = wstation.idle_servers
                        while widle:
                            peer = widle.pop()
                            peer.state = _BUSY
                            duration = wstation.det_service
                            if duration is None:
                                duration = wstation.dist.sample(self.rng)
                            wstation.busy_time += duration
                            self._seq += 1
                            heappush(self._events,
                                     (self.now + duration, self._seq, peer))
                    else:
                        self._start_source(wstation)
                else:
                    self._continue_push(waiter)
            server = idle.pop()
            server.state = _BUSY
            server.item_birth = birth
            if schedule is None:
                duration = station.det_service
                if duration is None:
                    duration = station.dist.sample(self.rng)
                station.busy_time += duration
                self._seq += 1
                heappush(self._events,
                         (self.now + duration, self._seq, server))
            else:
                self._schedule_completion(server)

    def _on_completion(self, server: Server) -> None:
        station = server.station
        if server.restarting:
            # End of a restart downtime: the fresh operator instance
            # resumes serving the queue.
            server.restarting = False
            server.pending = []
            server.pending_pos = 0
            server.state = _IDLE
            station.idle_servers.append(server)
            if station.is_source:
                self._start_source(station)
            else:
                self._start_services(station)
            return
        if server.fail_action is not None:
            action, index = server.fail_action
            server.fail_action = None
            self._supervise(server, action, index)
            return
        if station.stopped:
            # The station was stopped while this service was in flight
            # (another server failed): its result is discarded.
            self.dead_letters.record(station.vertex, None, "stopped-actor")
            server.state = _IDLE
            station.idle_servers.append(server)
            return
        station.consumed += 1
        if station.is_source:
            # A freshly generated item is born when its generation
            # (the source's fictitious service) completes.
            server.item_birth = self.now
        elif not station.routes:
            # Sink: the item's journey ends here — record its latency.
            latency = self.now - server.item_birth
            station.latency_sum += latency
            station.latency_count += 1
            if latency > station.latency_max:
                station.latency_max = latency
        outputs = self._route(station)
        server.pending = outputs
        server.pending_pos = 0
        self._continue_push(server)

    def _supervise(self, server: Server, action: str, index: int) -> None:
        """Apply the station's supervision policy to an injected failure."""
        station = server.station
        station.failed += 1
        policy = station.policy
        assert policy is not None and station.tracker is not None
        directive = policy.decide_fault(action)
        if directive is Directive.RESTART and \
                station.tracker.record(self.now):
            directive = Directive.STOP
        self.supervision.record(SupervisionEvent(
            time=self.now,
            vertex=station.vertex,
            actor=station.name,
            directive=directive.value,
            reason=f"injected {action}",
            item_index=index,
            restarts=station.tracker.total,
        ))
        if directive is not Directive.ESCALATE:
            self.dead_letters.record(
                station.vertex, None, f"supervision-{directive.value}")
        if directive is Directive.RESTART:
            station.restarts += 1
            downtime = policy.backoff(station.tracker.in_window)
            if downtime > 0.0:
                self._schedule_restart(server, downtime)
                return
            directive = Directive.RESUME
        if directive is Directive.RESUME:
            # The failed item is gone; the server serves the next one.
            server.pending = []
            server.pending_pos = 0
            self._continue_push(server)
            return
        if directive is Directive.STOP:
            self._stop_station(station, server)
            return
        self._halt(station, f"escalated injected {action}")

    def _stop_station(self, station: Station, server: Server) -> None:
        """Kill one station; the rest of the network keeps running."""
        station.stopped = True
        server.pending = []
        server.pending_pos = 0
        server.state = _IDLE
        station.idle_servers.append(server)
        assert station.policy is not None
        if not station.policy.divert_on_stop:
            # The dead station's queue stays full: upstream senders
            # block and eventually drain the event heap — the stall
            # regime the deadlock verdict reports.
            return
        while station.queue:
            station.queue.popleft()
            self.dead_letters.record(station.vertex, None, "stopped-actor")
        while station.waiters:
            waiter = station.waiters.popleft()
            self.dead_letters.record(station.vertex, None, "stopped-actor")
            waiter.pending_pos += 1
            waiter.station.blocked_time += self.now - waiter.blocked_since
            self._continue_push(waiter)

    def _halt(self, station: Station, reason: str) -> None:
        """An Escalate directive: the whole system comes down."""
        self._halted = True
        self.halt_reason = f"{station.vertex}: {reason}"
        self._events.clear()

    def _continue_push(self, server: Server) -> None:
        """Deliver pending outputs downstream, blocking on full queues."""
        station = server.station
        while server.pending_pos < len(server.pending):
            target = server.pending[server.pending_pos]
            if target.stopped and target.policy is not None \
                    and target.policy.divert_on_stop:
                # Diverted mailbox of a stopped actor: straight to the
                # dead-letter sink, the sender keeps flowing.
                self.dead_letters.record(
                    target.vertex, None, "stopped-actor")
                server.pending_pos += 1
                continue
            if target.schedule is not None:
                offered = target.offered
                target.offered = offered + 1
                if target.schedule.drops_arrival(offered):
                    target.shed += 1
                    server.pending_pos += 1
                    continue
            if len(target.queue) < target.capacity and not target.waiters:
                target.queue.append((server.item_birth, self.now))
                target.arrivals += 1
                server.pending_pos += 1
                if target.idle_servers:
                    self._start_services(target)
            elif not self.backpressure:
                # Load shedding: the full destination discards the item
                # and the sender carries on immediately.
                target.dropped += 1
                server.pending_pos += 1
            else:
                server.state = _BLOCKED
                server.blocked_since = self.now
                target.waiters.append(server)
                return
        server.pending = []
        server.pending_pos = 0
        server.state = _IDLE
        station.idle_servers.append(server)
        if station.is_source:
            self._start_source(station)
        else:
            self._start_services(station)

    def _route(self, station: Station) -> List[Station]:
        """Resolve the outputs of one completed service.

        Applies the selectivity gain through a fractional credit
        accumulator, then routes each output along one edge.  Sinks have
        no routes but still count emissions: their results leave the
        topology, and the model's sink departure rate (Proposition 3.5)
        refers to exactly those.
        """
        station.credits += station.gain
        count = int(station.credits + 1e-9)
        station.credits -= count
        station.emitted += count
        if not station.routes:
            return []
        outputs: List[Station] = []
        for _ in range(count):
            index = self._pick_route(station)
            station.edge_counts[index] += 1
            outputs.append(station.routes[index](self.rng))
        return outputs

    def _pick_route(self, station: Station) -> int:
        if len(station.routes) == 1:
            return 0
        if self.routing == "stochastic":
            index = bisect_right(station.route_cum, self.rng.random())
            return min(index, len(station.route_probs) - 1)
        # Proportional: weighted round-robin by largest deficit.
        for index, prob in enumerate(station.route_probs):
            station.route_deficit[index] += prob
        best = max(range(len(station.route_probs)),
                   key=lambda i: station.route_deficit[i])
        station.route_deficit[best] -= 1.0
        return best

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _measure(self, snapshots: Dict[str, StationCounters],
                 warmup: float, until: float) -> "Measurements":
        duration = until - warmup
        per_station: Dict[str, "StationMeasurement"] = {}
        for station in self.stations:
            base = snapshots.get(station.name, StationCounters())
            waits = station.wait_count - base.wait_count
            latencies = station.latency_count - base.latency_count
            per_station[station.name] = StationMeasurement(
                name=station.name,
                vertex=station.vertex,
                arrival_rate=(station.arrivals - base.arrivals) / duration,
                consumption_rate=(station.consumed - base.consumed) / duration,
                departure_rate=(station.emitted - base.emitted) / duration,
                utilization=(station.busy_time - base.busy_time)
                / (duration * len(station.servers)),
                blocked_fraction=(station.blocked_time - base.blocked_time)
                / (duration * len(station.servers)),
                edge_counts=tuple(station.edge_counts),
                drop_rate=(station.dropped - base.dropped) / duration,
                mean_wait=((station.wait_sum - base.wait_sum) / waits
                           if waits else 0.0),
                mean_latency=((station.latency_sum - base.latency_sum)
                              / latencies if latencies else None),
                latency_samples=latencies,
                failed=station.failed - base.failed,
                restarts=station.restarts - base.restarts,
                shed=station.shed - base.shed,
            )
        return Measurements(duration=duration, stations=per_station,
                            deadlock=self.deadlock,
                            halted=self.halt_reason)


@dataclass(frozen=True)
class StationMeasurement:
    """Measured steady-state figures of one station."""

    name: str
    vertex: str
    arrival_rate: float
    consumption_rate: float
    departure_rate: float
    utilization: float
    blocked_fraction: float
    edge_counts: Tuple[int, ...]
    #: Items per second discarded at this station's full queue (load
    #: shedding mode only; always zero under backpressure).
    drop_rate: float = 0.0
    #: Mean time items spent queued at this station.
    mean_wait: float = 0.0
    #: Mean source-to-here latency of items consumed by this station
    #: (recorded at sinks only; ``None`` elsewhere).
    mean_latency: Optional[float] = None
    latency_samples: int = 0
    #: Injected failures, restarts and shed arrivals over the window.
    failed: int = 0
    restarts: int = 0
    shed: int = 0


@dataclass(frozen=True)
class Measurements:
    """Measured figures for a whole network, aggregated per vertex."""

    duration: float
    stations: Dict[str, StationMeasurement]
    #: Blocked-cycle verdict when the run drained its event heap with
    #: blocked senders under ``on_deadlock="report"``.
    deadlock: Optional[WatchdogReport] = None
    #: Escalation reason when an Escalate directive halted the engine.
    halted: Optional[str] = None

    def vertex_rates(self) -> Dict[str, "VertexMeasurement"]:
        """Aggregate sub-stations (partitioned replicas) by vertex name."""
        grouped: Dict[str, List[StationMeasurement]] = {}
        for measurement in self.stations.values():
            grouped.setdefault(measurement.vertex, []).append(measurement)
        out: Dict[str, VertexMeasurement] = {}
        for vertex, measurements in grouped.items():
            total_latency_samples = sum(m.latency_samples
                                        for m in measurements)
            if total_latency_samples:
                mean_latency = sum(
                    (m.mean_latency or 0.0) * m.latency_samples
                    for m in measurements
                ) / total_latency_samples
            else:
                mean_latency = None
            out[vertex] = VertexMeasurement(
                vertex=vertex,
                arrival_rate=sum(m.arrival_rate for m in measurements),
                consumption_rate=sum(m.consumption_rate for m in measurements),
                departure_rate=sum(m.departure_rate for m in measurements),
                utilization=max(m.utilization for m in measurements),
                blocked_fraction=max(m.blocked_fraction for m in measurements),
                drop_rate=sum(m.drop_rate for m in measurements),
                mean_wait=max(m.mean_wait for m in measurements),
                mean_latency=mean_latency,
                failed=sum(m.failed for m in measurements),
                restarts=sum(m.restarts for m in measurements),
                shed=sum(m.shed for m in measurements),
            )
        return out


@dataclass(frozen=True)
class VertexMeasurement:
    """Measured figures of one topology vertex (all replicas combined)."""

    vertex: str
    arrival_rate: float
    consumption_rate: float
    departure_rate: float
    utilization: float
    blocked_fraction: float
    drop_rate: float = 0.0
    mean_wait: float = 0.0
    mean_latency: Optional[float] = None
    failed: int = 0
    restarts: int = 0
    shed: int = 0
