"""Build and run a simulated queueing network from an abstract topology.

This is the bridge between the SpinStreams cost models
(:mod:`repro.core`) and the discrete-event engine (:mod:`repro.sim.engine`):
every operator becomes a station with a bounded mailbox, replicated
operators become multi-server stations (stateless) or groups of keyed
sub-stations (partitioned-stateful), and the measured steady-state rates
come back keyed by vertex so they can be compared one-to-one with the
model's predictions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.graph import StateKind, Topology, TopologyError
from repro.core.partitioning import partition_shares
from repro.core.steady_state import SteadyStateResult
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.supervision import (
    SupervisionLog,
    SupervisorStrategy,
    WatchdogReport,
)
from repro.sim.distributions import Distribution, make_distribution
from repro.sim.engine import Engine, Measurements, Station, VertexMeasurement


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of a simulation run.

    Attributes
    ----------
    mailbox_capacity:
        Bounded mailbox size of every station (the Akka
        ``BoundedMailbox`` capacity).
    service_family:
        Distribution family of the service times (see
        :func:`repro.sim.distributions.make_distribution`).
    service_cv:
        Coefficient of variation for families that take one.
    routing:
        ``"stochastic"`` or ``"proportional"`` edge routing.
    items:
        Number of items the source should generate over the horizon;
        together with the source rate it fixes the virtual duration.
    warmup_fraction:
        Fraction of the horizon discarded before measuring, so the
        reported rates describe the steady state.
    seed:
        RNG seed (service sampling, stochastic routing).
    backpressure:
        ``True`` (default) blocks senders on full mailboxes (BAS);
        ``False`` switches to load shedding — items offered to a full
        queue are discarded (the paper's Section 2 alternative).
    """

    mailbox_capacity: int = 64
    service_family: str = "deterministic"
    service_cv: Optional[float] = None
    routing: str = "stochastic"
    items: int = 50_000
    warmup_fraction: float = 0.25
    seed: int = 1
    backpressure: bool = True
    #: Per-message mailbox hop cost added to every non-source station's
    #: service time (seconds); batching amortizes it to
    #: ``hop_overhead / batch_size`` per tuple, matching the analytical
    #: model of :func:`repro.core.solver.predict_batching`.
    hop_overhead: float = 0.0
    #: Global tuples-per-message batch size; ``Edge.batch`` overrides
    #: per edge (probability-weighted over a station's input edges).
    batch_size: int = 1
    #: Barrier cadence of aligned-barrier checkpointing: a snapshot
    #: every ``checkpoint_interval`` source items, each pausing a
    #: station for ``checkpoint_overhead`` seconds.  ``0`` disables the
    #: derating (the default), mirroring the analytical model of
    #: :func:`repro.core.solver.predict_checkpoint`.
    checkpoint_interval: int = 0
    checkpoint_overhead: float = 0.0
    #: Seeded fault plan injected into the run (``None`` = fault-free).
    fault_plan: Optional[FaultPlan] = None
    #: Per-vertex supervision policies applied to injected failures.
    supervisor: Optional[SupervisorStrategy] = None
    #: ``"raise"`` (historical) aborts BAS deadlocks with an exception;
    #: ``"report"`` returns normally with the blocked-cycle verdict on
    #: the measurements.
    on_deadlock: str = "raise"

    def distribution(self, mean: float) -> Distribution:
        return make_distribution(self.service_family, mean, cv=self.service_cv)

    def effective_service_time(self, topology: Topology, name: str) -> float:
        """Service time of one vertex including the amortized mailbox hop.

        The hop cost of a message is paid by the receiver once per
        message, so batching ``b`` tuples leaves ``hop_overhead / b``
        per tuple.  Vertices fed by edges with different per-edge batch
        sizes amortize by the probability-weighted mean of ``1/b``.
        """
        base = topology.operator(name).service_time
        base += self._checkpoint_tax(topology, name)
        if self.hop_overhead <= 0.0 or name == topology.source:
            return base
        weighted = 0.0
        total = 0.0
        for edge in topology.in_edges(name):
            size = edge.batch.size if edge.batch is not None else self.batch_size
            weighted += edge.probability / size
            total += edge.probability
        if total <= 0.0:
            return base + self.hop_overhead / self.batch_size
        return base + self.hop_overhead * weighted / total

    def _checkpoint_tax(self, topology: Topology, name: str) -> float:
        """Amortized barrier-snapshot pause per tuple at one station.

        Barriers cross every station at ``1 / checkpoint_interval``
        times the source emission rate; each crossing costs
        ``checkpoint_overhead`` seconds of service capacity.  Relative
        arrival rates come from a nominal selectivity propagation, so
        the tax per tuple matches the analytical model of
        :func:`repro.core.solver.predict_checkpoint` without running a
        solve inside the simulator.
        """
        if self.checkpoint_interval <= 0 or self.checkpoint_overhead <= 0.0:
            return 0.0
        relative = _relative_arrivals(topology)
        arrival = relative.get(name, 0.0)
        if arrival <= 0.0:
            return 0.0
        return self.checkpoint_overhead / (self.checkpoint_interval * arrival)


def _relative_arrivals(topology: Topology) -> Dict[str, float]:
    """Nominal arrival rate of every vertex relative to source emission.

    One topological sweep of the selectivity/probability propagation
    (no capacity clamping — this is the fault-free nominal regime the
    checkpoint tax is expressed in).  The source's own emissions count
    as its arrivals: it snapshots between emitted items.
    """
    out: Dict[str, float] = {}
    arrivals: Dict[str, float] = {}
    source = topology.source
    for name in topology.topological_order():
        if name == source:
            arrival = 1.0
        else:
            arrival = sum(out[edge.source] * edge.probability
                          for edge in topology.in_edges(name))
        arrivals[name] = arrival
        out[name] = arrival * topology.operator(name).gain
    return arrivals


@dataclass(frozen=True)
class SimulationResult:
    """Measured steady-state behaviour of a simulated topology."""

    topology: Topology
    config: SimulationConfig
    measurements: Measurements
    vertices: Mapping[str, VertexMeasurement]
    source_rate: float
    #: Supervision decisions of the run, virtual-time ordered; two runs
    #: with the same seeds produce identical ``signature()`` digests.
    supervision: Optional[SupervisionLog] = None
    #: Dead letters per vertex (supervision drops, stopped actors).
    dead_letters: Optional[Mapping[str, int]] = None

    @property
    def throughput(self) -> float:
        """Measured topology throughput: source departure rate (items/sec)."""
        return self.vertices[self.topology.source].departure_rate

    @property
    def deadlock(self) -> Optional[WatchdogReport]:
        """Blocked-cycle verdict (``on_deadlock="report"`` runs only)."""
        return self.measurements.deadlock

    def total_failed(self) -> int:
        """Injected failures handled by supervision over the window."""
        return sum(v.failed for v in self.vertices.values())

    def total_restarts(self) -> int:
        return sum(v.restarts for v in self.vertices.values())

    def total_shed(self) -> int:
        """Arrivals shed by injected mailbox drop windows."""
        return sum(v.shed for v in self.vertices.values())

    def departure_rate(self, vertex: str) -> float:
        return self.vertices[vertex].departure_rate

    def arrival_rate(self, vertex: str) -> float:
        return self.vertices[vertex].arrival_rate

    def utilization(self, vertex: str) -> float:
        return self.vertices[vertex].utilization

    def mean_latency(self) -> Optional[float]:
        """Mean end-to-end latency (seconds) over all sink consumptions.

        Computed from the per-item timestamps the engine tracks from
        source emission to sink service completion; ``None`` when no
        item completed during the measurement window.
        """
        samples = 0
        weighted = 0.0
        for measurement in self.measurements.stations.values():
            if measurement.mean_latency is not None:
                weighted += measurement.mean_latency * measurement.latency_samples
                samples += measurement.latency_samples
        if samples == 0:
            return None
        return weighted / samples

    def mean_wait(self, vertex: str) -> float:
        """Mean queueing delay measured at one vertex (seconds)."""
        return self.vertices[vertex].mean_wait

    def total_drop_rate(self) -> float:
        """Items per second discarded network-wide (load shedding only)."""
        return sum(v.drop_rate for v in self.vertices.values())

    def goodput(self) -> float:
        """Results delivered per second: total sink consumption rate."""
        return sum(
            self.vertices[name].consumption_rate
            for name in self.topology.sinks
        )

    def throughput_error(self, predicted: SteadyStateResult) -> float:
        """Relative error between predicted and measured throughput."""
        if predicted.throughput <= 0.0:
            raise TopologyError("predicted throughput must be positive")
        return abs(self.throughput - predicted.throughput) / predicted.throughput

    def departure_errors(self, predicted: SteadyStateResult) -> Dict[str, float]:
        """Per-operator relative error of the departure rates (Figure 8)."""
        errors: Dict[str, float] = {}
        for name in self.topology.names:
            model = predicted.departure_rate(name)
            if model <= 0.0:
                continue
            errors[name] = abs(self.departure_rate(name) - model) / model
        return errors


def build_engine(
    topology: Topology,
    config: SimulationConfig,
    source_rate: Optional[float] = None,
    partition_heuristic: str = "greedy",
) -> Tuple[Engine, float]:
    """Construct the engine for a topology; returns ``(engine, source_rate)``."""
    source = topology.source
    if source_rate is None:
        source_rate = topology.operator(source).service_rate
    if source_rate <= 0.0:
        raise TopologyError(f"source rate must be positive, got {source_rate}")

    stations: List[Station] = []
    # vertex -> list of candidate sub-stations with their load shares.
    groups: Dict[str, List[Tuple[Station, float]]] = {}

    for spec in topology.operators:
        if spec.name == source:
            station = Station(
                name=spec.name,
                vertex=spec.name,
                dist=config.distribution(1.0 / source_rate),
                gain=spec.gain,
                capacity=config.mailbox_capacity,
                n_servers=1,
                is_source=True,
            )
            stations.append(station)
            groups[spec.name] = [(station, 1.0)]
        elif spec.state is StateKind.PARTITIONED and spec.replication > 1:
            assert spec.keys is not None  # enforced by OperatorSpec
            shares = partition_shares(spec.keys, spec.replication,
                                      heuristic=partition_heuristic)
            members: List[Tuple[Station, float]] = []
            service_time = config.effective_service_time(topology, spec.name)
            for index, share in enumerate(shares):
                station = Station(
                    name=f"{spec.name}#{index}",
                    vertex=spec.name,
                    dist=config.distribution(service_time),
                    gain=spec.gain,
                    capacity=config.mailbox_capacity,
                    n_servers=1,
                )
                stations.append(station)
                members.append((station, share))
            groups[spec.name] = members
        else:
            station = Station(
                name=spec.name,
                vertex=spec.name,
                dist=config.distribution(
                    config.effective_service_time(topology, spec.name)),
                gain=spec.gain,
                capacity=config.mailbox_capacity,
                n_servers=spec.replication,
            )
            stations.append(station)
            groups[spec.name] = [(station, 1.0)]

    for spec in topology.operators:
        senders = [station for station, _ in groups[spec.name]]
        for edge in topology.out_edges(spec.name):
            resolver = _make_resolver(groups[edge.target], config.routing)
            for sender in senders:
                sender.add_route(resolver, edge.probability)

    faults = (FaultInjector(config.fault_plan)
              if config.fault_plan is not None else None)
    engine = Engine(stations, seed=config.seed, routing=config.routing,
                    backpressure=config.backpressure,
                    faults=faults, supervisor=config.supervisor,
                    on_deadlock=config.on_deadlock)
    return engine, source_rate


def _make_resolver(members: List[Tuple[Station, float]], routing: str):
    """Pick the destination sub-station of a vertex for one item.

    Single-member vertices resolve statically; partitioned groups route
    by the key-partition load shares, either sampling (stochastic) or
    with a deterministic largest-deficit rule (proportional) — the
    simulated analog of hashing the item key.
    """
    if len(members) == 1:
        only = members[0][0]

        def resolve_static(rng: random.Random) -> Station:
            return only

        # Marks the edge as statically routed: the engine's fast path
        # skips the call entirely (the resolver consumes no RNG state,
        # so skipping it is exact).
        resolve_static.static_target = only
        return resolve_static

    stations = [station for station, _ in members]
    shares = [share for _, share in members]
    if routing == "stochastic":
        cumulative: List[float] = []
        total = 0.0
        for share in shares:
            total += share
            cumulative.append(total)

        def resolve(rng: random.Random) -> Station:
            draw = rng.random() * total
            for index, bound in enumerate(cumulative):
                if draw < bound:
                    return stations[index]
            return stations[-1]

        return resolve

    deficits = [0.0] * len(members)

    def resolve_proportional(rng: random.Random) -> Station:
        for index, share in enumerate(shares):
            deficits[index] += share
        best = max(range(len(members)), key=lambda i: deficits[i])
        deficits[best] -= 1.0
        return stations[best]

    return resolve_proportional


def simulate(
    topology: Topology,
    config: Optional[SimulationConfig] = None,
    source_rate: Optional[float] = None,
    partition_heuristic: str = "greedy",
) -> SimulationResult:
    """Simulate a topology and return its measured steady-state rates.

    The virtual horizon is ``config.items / source_rate`` so every run
    generates (about) the same number of items regardless of how fast
    the source is; the warmup fraction is discarded before measuring.
    """
    if config is None:
        config = SimulationConfig()
    engine, rate = build_engine(
        topology, config, source_rate=source_rate,
        partition_heuristic=partition_heuristic,
    )
    horizon = config.items / rate
    warmup = horizon * config.warmup_fraction
    measurements = engine.run(until=horizon, warmup=warmup)
    return SimulationResult(
        topology=topology,
        config=config,
        measurements=measurements,
        vertices=measurements.vertex_rates(),
        source_rate=rate,
        supervision=engine.supervision,
        dead_letters=engine.dead_letters.counts(),
    )


def measured_edge_probabilities(
    result: SimulationResult,
) -> Dict[Tuple[str, str], float]:
    """Empirical routing probabilities observed during a simulation.

    Useful to validate the routing machinery and as the measurement the
    profiler would extract from a real run.
    """
    topology = result.topology
    probabilities: Dict[Tuple[str, str], float] = {}
    for spec in topology.operators:
        out_edges = topology.out_edges(spec.name)
        if not out_edges:
            continue
        counts = [0] * len(out_edges)
        for measurement in result.measurements.stations.values():
            if measurement.vertex != spec.name:
                continue
            for index, count in enumerate(measurement.edge_counts):
                counts[index] += count
        total = sum(counts)
        for edge, count in zip(out_edges, counts):
            probabilities[(edge.source, edge.target)] = (
                count / total if total else 0.0
            )
    return probabilities
