"""Service/inter-arrival time distributions for the simulator.

The cost models of the paper are distribution-agnostic (flow
conservation holds "regardless of the statistical distributions of the
service rates"), so the simulator supports several families to exercise
that claim: deterministic, exponential, uniform, log-normal and Erlang.
Every distribution is parameterized by its *mean*, matching the way
operator service times are profiled.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Optional


class Distribution(ABC):
    """A positive random variable parameterized by its mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0.0:
            raise ValueError(f"mean must be positive, got {mean}")
        self.mean = mean

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one sample (strictly positive)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mean={self.mean!r})"


class Deterministic(Distribution):
    """Constant service time — zero variance, matches the fluid model."""

    def sample(self, rng: random.Random) -> float:
        return self.mean


class Exponential(Distribution):
    """Exponential (memoryless) service time."""

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class Uniform(Distribution):
    """Uniform over ``[mean * (1 - spread), mean * (1 + spread)]``."""

    def __init__(self, mean: float, spread: float = 0.5) -> None:
        super().__init__(mean)
        if not 0.0 <= spread < 1.0:
            raise ValueError(f"spread must be in [0, 1), got {spread}")
        self.spread = spread

    def sample(self, rng: random.Random) -> float:
        low = self.mean * (1.0 - self.spread)
        high = self.mean * (1.0 + self.spread)
        return rng.uniform(low, high)


class LogNormal(Distribution):
    """Log-normal with a given coefficient of variation.

    Heavy-ish tail: models operators whose cost occasionally spikes
    (e.g. a window flush).
    """

    def __init__(self, mean: float, cv: float = 0.5) -> None:
        super().__init__(mean)
        if cv <= 0.0:
            raise ValueError(f"cv must be positive, got {cv}")
        self.cv = cv
        sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(sigma2)
        self._mu = math.log(mean) - sigma2 / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self._sigma)


class Erlang(Distribution):
    """Erlang-k: sum of ``k`` exponential phases, variance ``mean^2 / k``."""

    def __init__(self, mean: float, k: int = 4) -> None:
        super().__init__(mean)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def sample(self, rng: random.Random) -> float:
        rate = self.k / self.mean
        return sum(rng.expovariate(rate) for _ in range(self.k))


def make_distribution(family: str, mean: float,
                      cv: Optional[float] = None) -> Distribution:
    """Build a distribution from its family name.

    ``family`` is one of ``deterministic``, ``exponential``, ``uniform``,
    ``lognormal``, ``erlang``.  ``cv`` customizes the spread where the
    family supports it.
    """
    family = family.strip().lower()
    if family == "deterministic":
        return Deterministic(mean)
    if family == "exponential":
        return Exponential(mean)
    if family == "uniform":
        return Uniform(mean, spread=cv if cv is not None else 0.5)
    if family == "lognormal":
        return LogNormal(mean, cv=cv if cv is not None else 0.5)
    if family == "erlang":
        return Erlang(mean, k=int(1.0 / (cv * cv)) if cv else 4)
    raise ValueError(f"unknown distribution family {family!r}")
