"""Simulation of cyclic topologies (validation for the cycles extension).

Builds the engine directly from a :class:`repro.core.cycles.CyclicGraph`
(the engine itself never required acyclicity — only the *cost models*
did) so the fixed-point solutions of
:func:`repro.core.cycles.analyze_cyclic` can be checked against
measurements.

Blocking-After-Service networks with feedback can deadlock when every
buffer along a cycle fills up; generous mailbox capacities (relative to
the feedback fraction) avoid it, and the run aborts with a diagnostic
when no event fires for the remaining horizon.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.cycles import CyclicGraph, CyclicResult
from repro.core.graph import StateKind, TopologyError
from repro.core.partitioning import partition_shares
from repro.faults.injector import FaultInjector
from repro.sim.engine import Engine, Measurements, Station, VertexMeasurement
from repro.sim.network import SimulationConfig, _make_resolver


class CyclicSimulationResult:
    """Measured steady-state behaviour of a simulated cyclic graph."""

    def __init__(self, graph: CyclicGraph, measurements: Measurements,
                 source_rate: float) -> None:
        self.graph = graph
        self.measurements = measurements
        self.vertices: Dict[str, VertexMeasurement] = (
            measurements.vertex_rates())
        self.source_rate = source_rate

    @property
    def throughput(self) -> float:
        return self.vertices[self.graph.source].departure_rate

    def departure_rate(self, vertex: str) -> float:
        return self.vertices[vertex].departure_rate

    def throughput_error(self, predicted: CyclicResult) -> float:
        if predicted.throughput <= 0.0:
            raise TopologyError("predicted throughput must be positive")
        return abs(self.throughput - predicted.throughput) \
            / predicted.throughput


def build_cyclic_engine(
    graph: CyclicGraph,
    config: SimulationConfig,
    source_rate: Optional[float] = None,
    partition_heuristic: str = "greedy",
) -> Tuple[Engine, float]:
    """Wire engine stations for a (possibly) cyclic graph."""
    source = graph.source
    if source_rate is None:
        source_rate = graph.operator(source).service_rate
    if source_rate <= 0.0:
        raise TopologyError(f"source rate must be positive, got {source_rate}")

    stations = []
    groups = {}
    for name in graph.names:
        spec = graph.operator(name)
        if name == source:
            station = Station(
                name=name, vertex=name,
                dist=config.distribution(1.0 / source_rate),
                gain=spec.gain, capacity=config.mailbox_capacity,
                n_servers=1, is_source=True,
            )
            stations.append(station)
            groups[name] = [(station, 1.0)]
        elif spec.state is StateKind.PARTITIONED and spec.replication > 1:
            assert spec.keys is not None
            shares = partition_shares(spec.keys, spec.replication,
                                      heuristic=partition_heuristic)
            members = []
            for index, share in enumerate(shares):
                station = Station(
                    name=f"{name}#{index}", vertex=name,
                    dist=config.distribution(spec.service_time),
                    gain=spec.gain, capacity=config.mailbox_capacity,
                    n_servers=1,
                )
                stations.append(station)
                members.append((station, share))
            groups[name] = members
        else:
            station = Station(
                name=name, vertex=name,
                dist=config.distribution(spec.service_time),
                gain=spec.gain, capacity=config.mailbox_capacity,
                n_servers=spec.replication,
            )
            stations.append(station)
            groups[name] = [(station, 1.0)]

    for name in graph.names:
        senders = [station for station, _ in groups[name]]
        for edge in graph.out_edges(name):
            resolver = _make_resolver(groups[edge.target], config.routing)
            for sender in senders:
                sender.add_route(resolver, edge.probability)

    faults = (FaultInjector(config.fault_plan)
              if config.fault_plan is not None else None)
    engine = Engine(stations, seed=config.seed, routing=config.routing,
                    faults=faults, supervisor=config.supervisor,
                    on_deadlock=config.on_deadlock)
    return engine, source_rate


def simulate_cyclic(
    graph: CyclicGraph,
    config: Optional[SimulationConfig] = None,
    source_rate: Optional[float] = None,
    partition_heuristic: str = "greedy",
) -> CyclicSimulationResult:
    """Simulate a cyclic graph and return its measured rates."""
    if config is None:
        config = SimulationConfig()
    engine, rate = build_cyclic_engine(
        graph, config, source_rate=source_rate,
        partition_heuristic=partition_heuristic,
    )
    horizon = config.items / rate
    warmup = horizon * config.warmup_fraction
    measurements = engine.run(until=horizon, warmup=warmup)
    return CyclicSimulationResult(graph, measurements, rate)
