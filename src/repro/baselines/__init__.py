"""Baseline strategies SpinStreams is compared against.

Currently: reactive elasticity (threshold-based dynamic scaling), the
adaptation approach the paper's introduction contrasts with static
optimization.
"""

from repro.baselines.elasticity import (
    AdaptiveRunResult,
    ControlStep,
    ElasticityConfig,
    ReactiveController,
    WorkloadPhase,
    run_elastic,
    run_static,
)

__all__ = [
    "AdaptiveRunResult",
    "ControlStep",
    "ElasticityConfig",
    "ReactiveController",
    "WorkloadPhase",
    "run_elastic",
    "run_static",
]
