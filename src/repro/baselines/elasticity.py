"""Reactive elasticity — the dynamic baseline SpinStreams argues against.

The paper's introduction positions static optimization against dynamic
adaptation: elasticity mechanisms "dynamically change the degree of
replication to efficiently manage variable workloads", but "are usually
intrusive and require sophisticated strategies to avoid downtimes of
running operators"; SpinStreams instead finds "the initial best
configuration... before starting the execution".  To make that
comparison concrete, this module implements the classic reactive
controller (threshold-based scaling, in the spirit of the elasticity
literature the paper cites [17, 22, 35]) on top of the simulator:

* the run is divided into *control periods*;
* each period executes on the simulator with the current replica
  configuration and the current workload rate;
* the controller then inspects the measured utilizations and scales
  replicable operators up (utilization above the high watermark) or
  down (below the low watermark, never under one replica);
* every reconfiguration pauses the affected part of the run for a
  *downtime* (the state-migration cost the paper highlights), during
  which no items are processed.

:func:`run_elastic` executes a workload made of constant-rate phases
under the controller; :func:`run_static` executes the same workload on
a topology optimized once, up front, by Algorithm 2.  Comparing their
delivered items reproduces the trade-off the paper describes: on a
stable workload the static plan processes strictly more (it starts
right and never pays downtime); when the workload shifts far from the
planning assumption, the elastic baseline eventually adapts while the
static plan stays wrongly sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import StateKind, Topology, TopologyError
from repro.sim.network import SimulationConfig, simulate


@dataclass(frozen=True)
class WorkloadPhase:
    """A period of constant source rate."""

    rate: float
    duration: float

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise TopologyError(f"phase rate must be positive, got {self.rate}")
        if self.duration <= 0.0:
            raise TopologyError(
                f"phase duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class ElasticityConfig:
    """Knobs of the reactive controller."""

    control_period: float = 1.0
    high_watermark: float = 0.9
    low_watermark: float = 0.4
    reconfiguration_downtime: float = 0.25
    max_replicas: int = 64
    scale_step: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise TopologyError(
                "watermarks must satisfy 0 < low < high <= 1")
        if self.control_period <= 0.0:
            raise TopologyError("control_period must be positive")
        if self.reconfiguration_downtime < 0.0:
            raise TopologyError("downtime must be non-negative")


@dataclass(frozen=True)
class ControlStep:
    """One control period of an elastic run."""

    start_time: float
    rate: float
    replicas: Mapping[str, int]
    throughput: float
    downtime: float
    reconfigured: Tuple[str, ...]


@dataclass(frozen=True)
class AdaptiveRunResult:
    """Timeline and totals of an elastic (or static) execution."""

    topology: Topology
    steps: Tuple[ControlStep, ...]
    items_processed: float
    total_downtime: float

    @property
    def reconfigurations(self) -> int:
        return sum(1 for step in self.steps if step.reconfigured)

    def mean_throughput(self, horizon: float) -> float:
        if horizon <= 0.0:
            raise TopologyError("horizon must be positive")
        return self.items_processed / horizon


class ReactiveController:
    """Threshold-based replica controller (the elasticity baseline)."""

    def __init__(self, topology: Topology, config: ElasticityConfig) -> None:
        self.topology = topology
        self.config = config
        self.replicas: Dict[str, int] = {
            name: 1 for name in topology.names
        }

    def decide(self, utilizations: Mapping[str, float]) -> List[str]:
        """Adjust replica counts from measured utilizations.

        Returns the names of the operators whose degree changed (each
        change costs a reconfiguration downtime).
        """
        changed: List[str] = []
        for name in self.topology.names:
            spec = self.topology.operator(name)
            if name == self.topology.source:
                continue
            if spec.state is StateKind.STATEFUL:
                continue  # not replicable — elasticity is stuck too
            utilization = utilizations.get(name, 0.0)
            current = self.replicas[name]
            if (utilization >= self.config.high_watermark
                    and current < self.config.max_replicas):
                self.replicas[name] = min(
                    self.config.max_replicas,
                    current + self.config.scale_step,
                )
                changed.append(name)
            elif (utilization <= self.config.low_watermark and current > 1):
                # Scale down conservatively: only when the *aggregate*
                # load fits in fewer replicas with margin.
                target = max(1, current - self.config.scale_step)
                if utilization * current / target < self.config.high_watermark:
                    self.replicas[name] = target
                    changed.append(name)
        return changed


def _measure_period(
    topology: Topology,
    replicas: Mapping[str, int],
    rate: float,
    sim_config: SimulationConfig,
):
    configured = topology.with_replications(dict(replicas))
    result = simulate(configured, sim_config, source_rate=rate)
    utilizations = {
        name: result.utilization(name) for name in topology.names
    }
    return result.throughput, utilizations


def run_elastic(
    topology: Topology,
    phases: Sequence[WorkloadPhase],
    config: Optional[ElasticityConfig] = None,
    sim_config: Optional[SimulationConfig] = None,
) -> AdaptiveRunResult:
    """Execute a phased workload under the reactive controller."""
    config = config or ElasticityConfig()
    sim_config = sim_config or SimulationConfig(items=20_000, seed=17)
    controller = ReactiveController(topology, config)

    steps: List[ControlStep] = []
    items = 0.0
    total_downtime = 0.0
    clock = 0.0
    pending_downtime = 0.0

    for phase in phases:
        remaining = phase.duration
        while remaining > 1e-12:
            period = min(config.control_period, remaining)
            downtime = min(pending_downtime, period)
            pending_downtime -= downtime
            productive = period - downtime
            throughput, utilizations = _measure_period(
                topology, controller.replicas, phase.rate, sim_config,
            )
            items += throughput * productive
            total_downtime += downtime
            changed = controller.decide(utilizations)
            if changed:
                pending_downtime += config.reconfiguration_downtime
            steps.append(ControlStep(
                start_time=clock,
                rate=phase.rate,
                replicas=dict(controller.replicas),
                throughput=throughput,
                downtime=downtime,
                reconfigured=tuple(changed),
            ))
            clock += period
            remaining -= period

    return AdaptiveRunResult(
        topology=topology,
        steps=tuple(steps),
        items_processed=items,
        total_downtime=total_downtime,
    )


def run_static(
    topology: Topology,
    phases: Sequence[WorkloadPhase],
    planning_rate: Optional[float] = None,
    sim_config: Optional[SimulationConfig] = None,
    max_replicas: Optional[int] = None,
) -> AdaptiveRunResult:
    """Execute the same workload on a statically optimized topology.

    The topology is optimized once with Algorithm 2 for
    ``planning_rate`` (default: the first phase's rate) and never
    reconfigured — no adaptation downtime, but also no reaction to
    workload shifts.
    """
    if not phases:
        raise TopologyError("need at least one workload phase")
    sim_config = sim_config or SimulationConfig(items=20_000, seed=17)
    planning_rate = planning_rate or phases[0].rate
    optimized = eliminate_bottlenecks(
        topology, source_rate=planning_rate, max_replicas=max_replicas,
    ).optimized

    steps: List[ControlStep] = []
    items = 0.0
    clock = 0.0
    replicas = {spec.name: spec.replication for spec in optimized.operators}
    for phase in phases:
        result = simulate(optimized, sim_config, source_rate=phase.rate)
        items += result.throughput * phase.duration
        steps.append(ControlStep(
            start_time=clock,
            rate=phase.rate,
            replicas=dict(replicas),
            throughput=result.throughput,
            downtime=0.0,
            reconfigured=(),
        ))
        clock += phase.duration

    return AdaptiveRunResult(
        topology=optimized,
        steps=tuple(steps),
        items_processed=items,
        total_downtime=0.0,
    )
