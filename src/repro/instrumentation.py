"""Process-wide performance counters for the solver and the simulator.

The optimizer's search loop and the discrete-event engine are the two
hot paths of the tool; this module gives both a
:mod:`repro.runtime.metrics`-style counter object so speedups (and
regressions) are *observable* instead of anecdotal:

* :data:`SOLVER` counts steady-state solves — full fixed-point runs,
  incremental re-solves, and memo-cache hits/misses — plus the
  per-vertex work inside each topological pass;
* :data:`ENGINE` counts discrete events processed by the simulator,
  split into fast-path and slow-path completions.

Counters are plain ints mutated under the GIL (single bytecode
increments), matching the concurrency story of
:class:`repro.runtime.metrics.ActorCounters`.  ``spinstreams optimize``
and ``spinstreams conformance`` print the snapshots; ``spinstreams
bench`` persists them to ``BENCH_*.json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields


@dataclass
class SolverCounters:
    """Counters of the steady-state solver (:mod:`repro.core.solver`)."""

    #: Full fixed-point solves: every vertex of every pass recomputed.
    full_solves: int = 0
    #: Incremental re-solves: only the edit's downstream cone recomputed.
    incremental_solves: int = 0
    #: Results served straight from the memo cache.
    cache_hits: int = 0
    #: Lookups that missed the memo cache (each triggers a solve).
    cache_misses: int = 0
    #: Topological passes executed (one per source-rate correction).
    passes: int = 0
    #: Vertex rate computations actually performed.
    vertices_computed: int = 0
    #: Vertex rates copied from a converged base solve instead of
    #: recomputed (the incremental solver's savings).
    vertices_reused: int = 0

    @property
    def solve_requests(self) -> int:
        """Analyses requested, however they were satisfied."""
        return self.cache_hits + self.full_solves + self.incremental_solves

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> "SolverCounters":
        return SolverCounters(**asdict(self))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def add(self, other: "SolverCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def since(self, earlier: "SolverCounters") -> "SolverCounters":
        """Counter deltas accumulated after the ``earlier`` snapshot."""
        return SolverCounters(**{
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
        })

    def summary(self) -> str:
        return (
            f"solver: {self.solve_requests} solves "
            f"({self.full_solves} full, {self.incremental_solves} "
            f"incremental, {self.cache_hits} cached; "
            f"hit rate {self.hit_rate:.0%}), "
            f"{self.vertices_reused}/{self.vertices_computed + self.vertices_reused} "
            f"vertex rates reused"
        )


@dataclass
class EngineCounters:
    """Counters of the discrete-event engine (:mod:`repro.sim.engine`)."""

    #: Engine.run invocations.
    runs: int = 0
    #: Discrete events processed (service/restart/failure completions).
    events: int = 0
    #: Events handled by the inlined fast path.
    fast_events: int = 0
    #: Events routed through the general (reference) completion handler.
    slow_events: int = 0

    def snapshot(self) -> "EngineCounters":
        return EngineCounters(**asdict(self))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def add(self, other: "EngineCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def since(self, earlier: "EngineCounters") -> "EngineCounters":
        """Counter deltas accumulated after the ``earlier`` snapshot."""
        return EngineCounters(**{
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
        })

    def summary(self) -> str:
        return (
            f"DES: {self.events:,} events in {self.runs} runs "
            f"({self.fast_events:,} fast-path, {self.slow_events:,} general)"
        )


@dataclass(frozen=True)
class PerfSnapshot:
    """Immutable copy of both counter sets at one instant."""

    solver: SolverCounters = field(default_factory=SolverCounters)
    engine: EngineCounters = field(default_factory=EngineCounters)


#: Process-wide counter instances (one per worker process in parallel
#: sweeps; the sweep driver aggregates the per-task snapshots).
SOLVER = SolverCounters()
ENGINE = EngineCounters()


def snapshot() -> PerfSnapshot:
    return PerfSnapshot(solver=SOLVER.snapshot(), engine=ENGINE.snapshot())


def reset() -> None:
    SOLVER.reset()
    ENGINE.reset()


def summary() -> str:
    return SOLVER.summary() + "\n" + ENGINE.summary()
