"""SpinStreams reproduction: static optimization of streaming topologies.

A faithful Python reproduction of *SpinStreams: a Static Optimization
Tool for Data Stream Processing Applications* (Mencagli, Dazzi, Tonci --
Middleware 2018): steady-state cost models with backpressure, bottleneck
elimination via operator fission, operator fusion, a bounded-mailbox
actor runtime standing in for Akka, a discrete-event queueing-network
simulator, random-topology generation, XML topology I/O and code
generation.

Quickstart::

    from repro import Edge, OperatorSpec, Topology, analyze

    topology = Topology(
        operators=[
            OperatorSpec("source", service_time=0.001),
            OperatorSpec("work", service_time=0.004),
        ],
        edges=[Edge("source", "work")],
    )
    result = analyze(topology)
    print(result.throughput)   # items/sec, backpressure-aware
"""

from repro.core import (
    AutoFusionResult,
    CyclicGraph,
    CyclicResult,
    Edge,
    FissionResult,
    FusionCandidate,
    FusionError,
    FusionPlan,
    FusionResult,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    SteadyStateResult,
    Topology,
    TopologyError,
    LatencyEstimate,
    MemoryEstimate,
    MultiSourceTopology,
    analysis_report,
    analyze,
    analyze_cyclic,
    apply_fusion,
    auto_fuse,
    eliminate_bottlenecks,
    enumerate_candidates,
    estimate_latency,
    estimate_memory,
    fission_report,
    fusion_report,
    merge_sources,
    plan_fusion,
    predicted_throughput,
)

__version__ = "1.0.0"

__all__ = [
    "AutoFusionResult",
    "CyclicGraph",
    "CyclicResult",
    "Edge",
    "LatencyEstimate",
    "MemoryEstimate",
    "MultiSourceTopology",
    "FissionResult",
    "FusionCandidate",
    "FusionError",
    "FusionPlan",
    "FusionResult",
    "KeyDistribution",
    "OperatorSpec",
    "StateKind",
    "SteadyStateResult",
    "Topology",
    "TopologyError",
    "analysis_report",
    "analyze",
    "analyze_cyclic",
    "apply_fusion",
    "auto_fuse",
    "eliminate_bottlenecks",
    "estimate_latency",
    "estimate_memory",
    "enumerate_candidates",
    "fission_report",
    "fusion_report",
    "merge_sources",
    "plan_fusion",
    "predicted_throughput",
    "__version__",
]
