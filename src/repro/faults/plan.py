"""Seeded, deterministic fault plans injectable into every backend.

A :class:`FaultPlan` is a finite set of fault records expressed in
*logical time* — the per-operator index of the item being processed —
rather than wall-clock time.  Item indices are deterministic in both
execution backends (the discrete-event simulator counts services per
station, the threaded runtime counts operator invocations per actor),
so the same plan executes the same failure schedule everywhere:

* :class:`PoisonFault` — the ``item_index``-th item processed by an
  operator raises (the tuple is poisonous, the operator survives);
* :class:`CrashFault` — processing the ``item_index``-th item crashes
  the operator instance (the supervision policy decides what happens);
* :class:`SlowdownFault` — transient service-time inflation: items in
  ``[start_item, end_item)`` take ``factor`` times longer;
* :class:`SourceHiccup` — the source pauses for ``pause`` seconds after
  emitting item ``item_index`` (virtual seconds in the simulator, slept
  wall-clock seconds in the runtime);
* :class:`MailboxDropFault` — a lossy window at an operator's mailbox:
  arrivals ``[start_item, end_item)`` are shed instead of enqueued.

:func:`generate_fault_plan` samples a plan from a seed and a rate
configuration; :func:`chaos_profile` bundles the plan with a matching
supervision strategy and the availability-derated steady-state
prediction, which is what the degraded-mode conformance oracle checks
the backends against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.graph import Topology
from repro.core.steady_state import SteadyStateResult, analyze
from repro.runtime.supervision import (
    Directive,
    SupervisionPolicy,
    SupervisorStrategy,
)


@dataclass(frozen=True)
class PoisonFault:
    vertex: str
    item_index: int


@dataclass(frozen=True)
class CrashFault:
    vertex: str
    item_index: int


@dataclass(frozen=True)
class SlowdownFault:
    vertex: str
    start_item: int
    end_item: int
    factor: float


@dataclass(frozen=True)
class SourceHiccup:
    vertex: str
    item_index: int
    pause: float


@dataclass(frozen=True)
class MailboxDropFault:
    vertex: str
    start_item: int
    end_item: int


Fault = object  # any of the record types above


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic failure schedule for one topology run."""

    seed: int
    poisons: Tuple[PoisonFault, ...] = ()
    crashes: Tuple[CrashFault, ...] = ()
    slowdowns: Tuple[SlowdownFault, ...] = ()
    hiccups: Tuple[SourceHiccup, ...] = ()
    drops: Tuple[MailboxDropFault, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.poisons or self.crashes or self.slowdowns
                    or self.hiccups or self.drops)

    def vertices(self) -> List[str]:
        """Vertices the plan touches, sorted."""
        names = {f.vertex for group in (self.poisons, self.crashes,
                                        self.slowdowns, self.hiccups,
                                        self.drops) for f in group}
        return sorted(names)

    def describe(self) -> str:
        lines = [f"fault plan (seed {self.seed}):"]
        for fault in self.poisons:
            lines.append(f"  poison   {fault.vertex} @ item {fault.item_index}")
        for fault in self.crashes:
            lines.append(f"  crash    {fault.vertex} @ item {fault.item_index}")
        for fault in self.slowdowns:
            lines.append(
                f"  slowdown {fault.vertex} items "
                f"[{fault.start_item}, {fault.end_item}) x{fault.factor:.2f}")
        for fault in self.hiccups:
            lines.append(f"  hiccup   {fault.vertex} @ item "
                         f"{fault.item_index} pause {fault.pause:.4f}s")
        for fault in self.drops:
            lines.append(f"  drops    {fault.vertex} arrivals "
                         f"[{fault.start_item}, {fault.end_item})")
        if self.empty:
            lines.append("  (no faults)")
        return "\n".join(lines)


@dataclass(frozen=True)
class FaultPlanConfig:
    """Sampling rates of :func:`generate_fault_plan`.

    Counts are *expected values per eligible operator* over the plan's
    horizon; the sampler realizes them as ``floor + Bernoulli(frac)``
    so the expectation is exact while staying integral per vertex.
    """

    crashes_per_operator: float = 1.0
    poisons_per_operator: float = 2.0
    slowdowns_per_operator: float = 0.5
    #: Service-time inflation factor range of one slowdown window.
    slowdown_factor: Tuple[float, float] = (1.5, 2.5)
    #: Width of one slowdown window as a fraction of the vertex's items.
    slowdown_span: Tuple[float, float] = (0.05, 0.15)
    hiccups_per_source: float = 1.0
    #: One hiccup pauses the source for this fraction of the horizon.
    hiccup_pause_frac: float = 0.01
    drop_windows_per_operator: float = 0.0
    #: Width of one mailbox drop window as a fraction of arrivals.
    drop_span: Tuple[float, float] = (0.01, 0.05)
    #: Fraction of non-source vertices eligible for faults (at least 1).
    fault_fraction: float = 0.6
    #: Downtime of one crash restart as a fraction of the horizon; the
    #: matching supervision strategy uses a constant backoff of this
    #: size so the availability derating is exact.
    crash_downtime_frac: float = 0.01


def _count(rng: random.Random, expected: float) -> int:
    """An integer with expectation ``expected`` (floor + Bernoulli)."""
    whole = int(expected)
    frac = expected - whole
    return whole + (1 if rng.random() < frac else 0)


def generate_fault_plan(
    topology: Topology,
    seed: int,
    config: Optional[FaultPlanConfig] = None,
    items: int = 30_000,
    analysis: Optional[SteadyStateResult] = None,
) -> FaultPlan:
    """Sample a deterministic fault plan for ``topology``.

    ``items`` is the number of items the source generates over the
    horizon; per-vertex item budgets follow from the no-fault
    steady-state analysis, so fault indices land inside the range each
    operator actually processes.
    """
    config = config or FaultPlanConfig()
    analysis = analysis or analyze(topology)
    rng = random.Random(seed * 0x9E3779B1 + 7)
    horizon = items / analysis.throughput
    source = topology.source

    expected_items: Dict[str, int] = {}
    for name in topology.names:
        rate = (analysis.throughput if name == source
                else analysis.arrival_rate(name))
        expected_items[name] = max(int(rate * horizon), 1)

    candidates = sorted(n for n in topology.names if n != source)
    eligible = candidates
    if candidates and config.fault_fraction < 1.0:
        keep = max(1, round(len(candidates) * config.fault_fraction))
        eligible = sorted(rng.sample(candidates, keep))

    poisons: List[PoisonFault] = []
    crashes: List[CrashFault] = []
    slowdowns: List[SlowdownFault] = []
    hiccups: List[SourceHiccup] = []
    drops: List[MailboxDropFault] = []

    for name in eligible:
        budget = expected_items[name]
        for _ in range(_count(rng, config.poisons_per_operator)):
            poisons.append(PoisonFault(name, rng.randrange(budget)))
        for _ in range(_count(rng, config.crashes_per_operator)):
            crashes.append(CrashFault(name, rng.randrange(budget)))
        for _ in range(_count(rng, config.slowdowns_per_operator)):
            span = int(budget * rng.uniform(*config.slowdown_span))
            if span < 1:
                continue
            start = rng.randrange(max(budget - span, 1))
            slowdowns.append(SlowdownFault(
                name, start, start + span,
                rng.uniform(*config.slowdown_factor)))
        for _ in range(_count(rng, config.drop_windows_per_operator)):
            span = int(budget * rng.uniform(*config.drop_span))
            if span < 1:
                continue
            start = rng.randrange(max(budget - span, 1))
            drops.append(MailboxDropFault(name, start, start + span))

    for _ in range(_count(rng, config.hiccups_per_source)):
        hiccups.append(SourceHiccup(
            source, rng.randrange(expected_items[source]),
            config.hiccup_pause_frac * horizon))

    return FaultPlan(
        seed=seed,
        poisons=tuple(poisons),
        crashes=tuple(crashes),
        slowdowns=tuple(slowdowns),
        hiccups=tuple(hiccups),
        drops=tuple(drops),
    )


def derating_factors(
    topology: Topology,
    plan: FaultPlan,
    horizon: float,
    strategy: SupervisorStrategy,
    analysis: Optional[SteadyStateResult] = None,
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, float]]:
    """Per-operator ``(availability, gain_factor, input_factor)`` of a plan.

    * **availability** derates effective capacity: restart downtime of
      crashes removes serving time, slowdown windows inflate the mean
      service time, source hiccups pause generation;
    * **gain_factor** derates output: poisoned and crashed items are
      consumed but produce nothing;
    * **input_factor** derates arrival flow: mailbox drop windows shed
      a fraction of the offered items before service.
    """
    analysis = analysis or analyze(topology)
    source = topology.source
    expected: Dict[str, float] = {}
    for name in topology.names:
        rate = (analysis.throughput if name == source
                else analysis.arrival_rate(name))
        expected[name] = max(rate * horizon, 1.0)

    availability = {name: 1.0 for name in topology.names}
    gain_factor = {name: 1.0 for name in topology.names}
    input_factor = {name: 1.0 for name in topology.names}

    downtime: Dict[str, float] = {}
    for fault in plan.crashes:
        policy = strategy.policy_for(fault.vertex)
        n = downtime.get(fault.vertex, 0.0)
        restarts = int(n / max(policy.backoff_base, 1e-12)) + 1
        downtime[fault.vertex] = n + policy.backoff(restarts)
    for name, lost in downtime.items():
        availability[name] *= max(1.0 - lost / horizon, 1e-6)

    for fault in plan.slowdowns:
        n = expected[fault.vertex]
        span = max(min(fault.end_item, n) - min(fault.start_item, n), 0.0)
        slow_frac = span / n
        inflation = 1.0 + (fault.factor - 1.0) * slow_frac
        availability[fault.vertex] /= inflation

    paused = 0.0
    for fault in plan.hiccups:
        paused += fault.pause
    if paused > 0.0:
        availability[source] *= max(1.0 - paused / horizon, 1e-6)

    lost_items: Dict[str, float] = {}
    for fault in plan.poisons:
        lost_items[fault.vertex] = lost_items.get(fault.vertex, 0.0) + 1.0
    for fault in plan.crashes:
        lost_items[fault.vertex] = lost_items.get(fault.vertex, 0.0) + 1.0
    for name, lost in lost_items.items():
        gain_factor[name] *= max(1.0 - lost / expected[name], 0.0)

    for fault in plan.drops:
        n = expected[fault.vertex]
        span = max(min(fault.end_item, n) - min(fault.start_item, n), 0.0)
        input_factor[fault.vertex] *= max(1.0 - span / n, 0.0)

    return availability, gain_factor, input_factor


@dataclass(frozen=True)
class ChaosProfile:
    """Everything one degraded-mode check needs, derived from one seed."""

    topology: Topology
    plan: FaultPlan
    strategy: SupervisorStrategy
    base: SteadyStateResult
    derated: SteadyStateResult
    horizon: float

    @property
    def predicted_degradation(self) -> float:
        """Fractional throughput loss the derated model predicts."""
        if self.base.throughput <= 0.0:
            return 0.0
        return 1.0 - self.derated.throughput / self.base.throughput


def chaos_profile(
    topology: Topology,
    seed: int,
    config: Optional[FaultPlanConfig] = None,
    items: int = 30_000,
    source_rate: Optional[float] = None,
) -> ChaosProfile:
    """Build the fault plan, supervision strategy and derated model.

    The supervision strategy restarts crashed operators with a constant
    backoff of ``crash_downtime_frac * horizon`` seconds (so the
    availability derating is exact) and resumes on poison tuples; the
    restart budget is effectively unlimited, keeping conformance runs in
    the restart regime rather than tipping into Stop.
    """
    config = config or FaultPlanConfig()
    base = analyze(topology, source_rate=source_rate)
    horizon = items / base.throughput
    backoff = max(config.crash_downtime_frac * horizon, 1e-9)
    strategy = SupervisorStrategy(default=SupervisionPolicy(
        on_crash=Directive.RESTART,
        max_restarts=1_000_000,
        window=horizon,
        backoff_base=backoff,
        backoff_factor=1.0,
        backoff_max=backoff,
    ))
    plan = generate_fault_plan(topology, seed, config, items=items,
                               analysis=base)
    availability, gain_factor, input_factor = derating_factors(
        topology, plan, horizon, strategy, analysis=base)
    derated = analyze(
        topology, source_rate=source_rate,
        availability=availability, gain_factor=gain_factor,
        input_factor=input_factor,
    )
    return ChaosProfile(
        topology=topology,
        plan=plan,
        strategy=strategy,
        base=base,
        derated=derated,
        horizon=horizon,
    )
