"""Compiled fault schedules and the runtime-side fault wrapper.

The :class:`FaultInjector` compiles a :class:`~repro.faults.plan.
FaultPlan` into per-vertex :class:`VertexSchedule` lookups that both
backends consult with nothing but an item index:

* the discrete-event engine asks ``action(i)`` / ``service_factor(i)``
  as it schedules and completes station services;
* the threaded runtime wraps each operator in a :class:`FaultyOperator`
  that counts its own invocations through a shared :class:`ItemClock`
  (shared so a *restarted* operator keeps the vertex's logical clock
  instead of replaying its faults from zero).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.operators.base import Operator
from repro.runtime.supervision import OperatorCrash, PoisonedTuple


class VertexSchedule:
    """The compiled fault schedule of one vertex (cheap point lookups)."""

    __slots__ = ("vertex", "poisons", "crashes", "slowdowns", "hiccups",
                 "drop_windows")

    def __init__(self, vertex: str) -> None:
        self.vertex = vertex
        self.poisons: frozenset = frozenset()
        self.crashes: frozenset = frozenset()
        self.slowdowns: Tuple[Tuple[int, int, float], ...] = ()
        self.hiccups: Dict[int, float] = {}
        self.drop_windows: Tuple[Tuple[int, int], ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.poisons or self.crashes or self.slowdowns
                    or self.hiccups or self.drop_windows)

    def action(self, index: int) -> Optional[str]:
        """``'poison'`` / ``'crash'`` for this item, ``None`` otherwise."""
        if index in self.crashes:
            return "crash"
        if index in self.poisons:
            return "poison"
        return None

    def service_factor(self, index: int) -> float:
        """Service-time inflation of this item (1.0 = nominal)."""
        factor = 1.0
        for start, end, value in self.slowdowns:
            if start <= index < end:
                factor *= value
        return factor

    def hiccup_pause(self, index: int) -> float:
        """Extra pause (seconds) the source takes after this item."""
        return self.hiccups.get(index, 0.0)

    def drops_arrival(self, index: int) -> bool:
        """Whether the ``index``-th arrival at this mailbox is shed."""
        for start, end in self.drop_windows:
            if start <= index < end:
                return True
        return False


_EMPTY = VertexSchedule("")


class FaultInjector:
    """Per-vertex schedule lookup compiled from one fault plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._schedules: Dict[str, VertexSchedule] = {}
        poisons: Dict[str, set] = {}
        crashes: Dict[str, set] = {}
        slowdowns: Dict[str, List[Tuple[int, int, float]]] = {}
        hiccups: Dict[str, Dict[int, float]] = {}
        drops: Dict[str, List[Tuple[int, int]]] = {}
        for fault in plan.poisons:
            poisons.setdefault(fault.vertex, set()).add(fault.item_index)
        for fault in plan.crashes:
            crashes.setdefault(fault.vertex, set()).add(fault.item_index)
        for fault in plan.slowdowns:
            slowdowns.setdefault(fault.vertex, []).append(
                (fault.start_item, fault.end_item, fault.factor))
        for fault in plan.hiccups:
            hiccups.setdefault(fault.vertex, {})[fault.item_index] = \
                fault.pause
        for fault in plan.drops:
            drops.setdefault(fault.vertex, []).append(
                (fault.start_item, fault.end_item))
        for vertex in plan.vertices():
            schedule = VertexSchedule(vertex)
            schedule.poisons = frozenset(poisons.get(vertex, ()))
            schedule.crashes = frozenset(crashes.get(vertex, ()))
            schedule.slowdowns = tuple(sorted(slowdowns.get(vertex, ())))
            schedule.hiccups = hiccups.get(vertex, {})
            schedule.drop_windows = tuple(sorted(drops.get(vertex, ())))
            self._schedules[vertex] = schedule

    def schedule(self, vertex: str) -> VertexSchedule:
        """The schedule of one vertex (an empty schedule when untouched)."""
        return self._schedules.get(vertex, _EMPTY)


class ItemClock:
    """The logical item counter of one actor's operator position.

    Owned by the actor's build site, not by the operator instance, so a
    supervision Restart (which re-instantiates the operator, and with it
    the :class:`FaultyOperator` wrapper) continues the count instead of
    re-triggering the same faults.  Only ever ticked from the single
    actor thread executing the operator.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def tick(self) -> int:
        index = self.value
        self.value = index + 1
        return index


class FaultyOperator(Operator):
    """Wrap an operator so it executes a vertex's fault schedule.

    Poison and crash indices raise (:class:`PoisonedTuple` /
    :class:`OperatorCrash`) for the supervisor to handle; slowdown
    windows inflate the wrapped call's duration by sleeping the
    difference; source hiccups sleep a fixed pause after the scheduled
    item.  State kind and selectivities mirror the inner operator so
    fission/fusion metadata carries through.
    """

    def __init__(self, inner: Operator, schedule: VertexSchedule,
                 clock: ItemClock) -> None:
        self.inner = inner
        self.schedule = schedule
        self.clock = clock
        self.state = inner.state
        self.input_selectivity = inner.input_selectivity
        self.output_selectivity = inner.output_selectivity

    def operator_function(self, item: Any) -> List[Any]:
        index = self.clock.tick()
        action = self.schedule.action(index)
        if action == "crash":
            raise OperatorCrash(
                f"injected crash at {self.schedule.vertex!r} item {index}")
        if action == "poison":
            raise PoisonedTuple(
                f"injected poison at {self.schedule.vertex!r} item {index}")
        started = time.perf_counter()
        outputs = self.inner.operator_function(item)
        elapsed = time.perf_counter() - started
        extra = (self.schedule.service_factor(index) - 1.0) * elapsed
        extra += self.schedule.hiccup_pause(index)
        if extra > 0.0:
            time.sleep(extra)
        return outputs

    def on_start(self) -> None:
        self.inner.on_start()

    def on_stop(self) -> None:
        self.inner.on_stop()

    def snapshot_state(self) -> Any:
        """Delegate to the wrapped operator.

        The fault schedule and item clock are deliberately *excluded*
        from epoch snapshots: the clock belongs to the build site and
        stays monotone across recovery rebuilds, so an injected crash
        that already fired never re-fires on the replayed items.
        """
        return self.inner.snapshot_state()

    def restore_state(self, snapshot: Any) -> None:
        self.inner.restore_state(snapshot)

    def key_of(self, item: Any) -> Optional[str]:
        return self.inner.key_of(item)

    def describe(self) -> str:
        return f"FaultyOperator({self.inner.describe()})"
