"""Seeded fault injection shared by the simulator and the actor runtime.

Fault plans are expressed in logical time (per-operator item indices),
so one seed produces one failure schedule that executes identically in
the discrete-event simulator and the threaded runtime — the substrate
of the degraded-mode conformance checks and the ``spinstreams chaos``
CLI subcommand.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultyOperator,
    ItemClock,
    VertexSchedule,
)
from repro.faults.plan import (
    ChaosProfile,
    CrashFault,
    FaultPlan,
    FaultPlanConfig,
    MailboxDropFault,
    PoisonFault,
    SlowdownFault,
    SourceHiccup,
    chaos_profile,
    derating_factors,
    generate_fault_plan,
)

__all__ = [
    "ChaosProfile",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanConfig",
    "FaultyOperator",
    "ItemClock",
    "MailboxDropFault",
    "PoisonFault",
    "SlowdownFault",
    "SourceHiccup",
    "VertexSchedule",
    "chaos_profile",
    "derating_factors",
    "generate_fault_plan",
]
