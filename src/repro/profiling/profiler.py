"""Profile-based measurement of operator costs and routing frequencies.

SpinStreams is driven by "profile-based measurements related to
processing costs of operators and the probability distributions that
model the frequency of data exchange between operators" (Section 1).
The paper points at DiSL (Java) and Mammut (C++) for this step; here
the profiler instruments a run of the actor runtime and extracts:

* the mean service time of every operator (busy time over items);
* its selectivity gain (items emitted over items processed);
* the empirical routing frequencies of its output edges.

:func:`profile_topology` runs an application "as is for a reasonable
amount of time" and returns a re-profiled :class:`Topology` ready for
the optimization algorithms, plus the raw figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from types import SimpleNamespace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.graph import Edge, OperatorSpec, Topology, TopologyError
from repro.operators.base import Operator
from repro.runtime.system import ActorSystem, OperatorFactory, RuntimeConfig


@dataclass(frozen=True)
class OperatorProfile:
    """Measured figures of one operator."""

    name: str
    items_processed: int
    mean_service_time: Optional[float]
    gain: float
    edge_frequencies: Mapping[str, float]
    service_samples: Tuple[float, ...] = ()

    @property
    def service_rate(self) -> Optional[float]:
        if self.mean_service_time is None or self.mean_service_time <= 0.0:
            return None
        return 1.0 / self.mean_service_time

    def percentile(self, q: float) -> Optional[float]:
        """Service-time percentile ``q`` in [0, 1] from the raw samples.

        Percentiles expose cost variability the mean hides (e.g. a
        window flush every N items); ``None`` without samples.
        """
        if not 0.0 <= q <= 1.0:
            raise TopologyError(f"percentile must be in [0, 1], got {q}")
        if not self.service_samples:
            return None
        ordered = sorted(self.service_samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


@dataclass(frozen=True)
class ProfileReport:
    """All operator profiles gathered in one profiling run."""

    topology: Topology
    duration: float
    profiles: Mapping[str, OperatorProfile]

    def profiled_topology(self, min_items: int = 10) -> Topology:
        """The topology re-annotated with measured costs and frequencies.

        Operators that processed fewer than ``min_items`` items keep
        their declared figures (their measurements are noise); edges
        whose empirical frequency is zero keep a small floor so the
        topology stays structurally valid.
        """
        specs: List[OperatorSpec] = []
        for spec in self.topology.operators:
            profile = self.profiles.get(spec.name)
            if (profile is None or profile.items_processed < min_items
                    or profile.mean_service_time is None):
                specs.append(spec)
                continue
            specs.append(OperatorSpec(
                name=spec.name,
                service_time=profile.mean_service_time,
                state=spec.state,
                input_selectivity=spec.input_selectivity,
                output_selectivity=profile.gain * spec.input_selectivity,
                replication=spec.replication,
                keys=spec.keys,
                operator_class=spec.operator_class,
                operator_args=spec.operator_args,
            ))

        edges: List[Edge] = []
        for spec in self.topology.operators:
            out_edges = self.topology.out_edges(spec.name)
            if not out_edges:
                continue
            profile = self.profiles.get(spec.name)
            frequencies = dict(profile.edge_frequencies) if profile else {}
            total = sum(frequencies.values())
            if total <= 0.0 or (profile and profile.items_processed < min_items):
                edges.extend(out_edges)
                continue
            floor = 1e-6
            raw = [max(frequencies.get(edge.target, 0.0) / total, floor)
                   for edge in out_edges]
            correction = 1.0 / sum(raw)
            for edge, frequency in zip(out_edges, raw):
                edges.append(Edge(edge.source, edge.target,
                                  frequency * correction))
        return Topology(specs, edges, name=f"{self.topology.name}+profiled")


def profile_topology(
    topology: Topology,
    factories: Mapping[str, OperatorFactory],
    duration: float = 2.0,
    warmup: Optional[float] = None,
    config: Optional[RuntimeConfig] = None,
    items: Optional[int] = None,
    seed: Optional[int] = None,
) -> ProfileReport:
    """Run the application unmodified and measure its operators.

    The run happens on the actor runtime with every replication degree
    forced to one (profiling measures the *initial* design, as in the
    paper's workflow) and the measured service times, gains and routing
    frequencies are extracted from the actor counters and routers.

    ``items`` switches to *deterministic exhaustion profiling*: instead
    of a wall-clock window the source generates exactly ``items`` items
    and the run measures the whole stream — no wall-clock-dependent
    window boundaries, so a seeded run replays its profile exactly
    (item counts and gains are bit-stable; service-time means inherit
    only scheduler jitter).  ``seed`` overrides the run seed in this
    mode.
    """
    base = topology.with_replications({name: 1 for name in topology.names})
    if items is not None:
        if items < 1:
            raise TopologyError(f"items must be >= 1, got {items}")
        run_config = config or RuntimeConfig()
        run_config = replace(run_config, max_items=items)
        if seed is not None:
            run_config = replace(run_config, seed=seed)
        system = ActorSystem.build(base, factories, config=run_config)
        result = _run_exhausted(system)
    else:
        system = ActorSystem.build(base, factories, config=config)
        result = system.run(duration, warmup=warmup)

    profiles: Dict[str, OperatorProfile] = {}
    for actor in system.actors:
        if actor.vertex != actor.actor_name:
            continue  # emitters/collectors (not present with n=1 anyway)
        counters = actor.counters
        processed = counters.processed
        mean = counters.mean_service_time()
        gain = counters.emitted / processed if processed else 1.0
        router = system._routers.get(actor.vertex)
        frequencies: Dict[str, float] = {}
        if router is not None:
            total = sum(router.counts.values())
            if total > 0:
                frequencies = {name: count / total
                               for name, count in router.counts.items()}
        profiles[actor.vertex] = OperatorProfile(
            name=actor.vertex,
            items_processed=processed,
            mean_service_time=mean,
            gain=gain,
            edge_frequencies=frequencies,
            service_samples=tuple(counters.service_samples),
        )
    return ProfileReport(
        topology=topology,
        duration=result.measurements.duration,
        profiles=profiles,
    )


def _run_exhausted(system: ActorSystem,
                   quiet_period: float = 0.25,
                   quiet_timeout: float = 30.0) -> SimpleNamespace:
    """Drive a bounded run to exhaustion and quiescence; measure totals.

    The source stops itself after ``max_items``; the run then ends when
    the system-wide progress counter stays flat for ``quiet_period``
    seconds (every in-flight item drained).  The window boundary is the
    item count, not the clock — the determinism the adaptive replay
    tests rely on.
    """
    started = time.perf_counter()
    system.start()
    source = system.source_actor
    deadline = started + quiet_timeout
    if source is not None:
        source.join(timeout=quiet_timeout)
    last = -1
    quiet_since = time.perf_counter()
    while time.perf_counter() < deadline:
        current = system._progress()
        now = time.perf_counter()
        if current != last:
            last = current
            quiet_since = now
        elif now - quiet_since >= quiet_period:
            break
        time.sleep(0.02)
    window = max(time.perf_counter() - started, 1e-9)
    system.stop()
    return SimpleNamespace(measurements=SimpleNamespace(duration=window))


class ServiceTimer:
    """Standalone stopwatch for profiling a single operator offline.

    Feed items through :meth:`measure` (outside any runtime) to estimate
    the operator's mean service time before building the XML input —
    handy in notebooks and tests.
    """

    def __init__(self, operator: Operator) -> None:
        self.operator = operator
        self.samples: List[float] = []
        self.outputs = 0

    def measure(self, item: Any) -> List[Any]:
        started = time.perf_counter()
        outputs = self.operator.operator_function(item)
        self.samples.append(time.perf_counter() - started)
        self.outputs += len(outputs)
        return outputs

    @property
    def mean_service_time(self) -> float:
        if not self.samples:
            raise TopologyError("no samples measured yet")
        return sum(self.samples) / len(self.samples)

    @property
    def gain(self) -> float:
        if not self.samples:
            raise TopologyError("no samples measured yet")
        return self.outputs / len(self.samples)
