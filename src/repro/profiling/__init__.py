"""Profiling: measure operator costs and routing frequencies from runs."""

from repro.profiling.profiler import (
    OperatorProfile,
    ProfileReport,
    ServiceTimer,
    profile_topology,
)

__all__ = [
    "OperatorProfile",
    "ProfileReport",
    "ServiceTimer",
    "profile_topology",
]
