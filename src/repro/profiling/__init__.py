"""Profiling: measure operator costs and routing frequencies from runs."""

from repro.profiling.online import (
    EstimatorConfig,
    OnlineEstimator,
    TickSample,
    VertexEstimate,
    window_estimates,
)
from repro.profiling.profiler import (
    OperatorProfile,
    ProfileReport,
    ServiceTimer,
    profile_topology,
)

__all__ = [
    "EstimatorConfig",
    "OnlineEstimator",
    "OperatorProfile",
    "ProfileReport",
    "ServiceTimer",
    "TickSample",
    "VertexEstimate",
    "profile_topology",
    "window_estimates",
]
