"""Online estimation of operator parameters from live counter deltas.

The offline profiler (:mod:`repro.profiling.profiler`) measures a run
after the fact; the adaptive controller needs the same figures *while*
the system runs, robust against measurement noise, and — because the
adaptive conformance suite replays scenarios seed by seed — perfectly
deterministic.  Three design rules make that hold:

* **Item-count windows, not wall-clock windows.**  An estimate is a
  function of the counter deltas of the last ``window_ticks`` control
  periods; window boundaries are the controller's tick sequence, never
  ``time.time()``.  Replaying the same tick-delta sequence replays the
  same estimates bit for bit.
* **Confidence gating.**  A window backed by fewer than ``min_items``
  processed items yields an unconfident estimate; the controller keeps
  the declared figure instead of chasing noise.
* **Explicit RNG.**  The bounded service-sample reservoir uses a
  caller-seeded ``random.Random`` (Vitter's Algorithm R); no global
  RNG, no hash-order dependence.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple


@dataclass(frozen=True)
class EstimatorConfig:
    """Window and confidence knobs of one online estimator."""

    #: Sliding-window length in control ticks.
    window_ticks: int = 5
    #: Minimum processed items inside the window for confidence.
    min_items: int = 30
    #: Relative deviation from the declared figure below which the
    #: measurement is treated as "unchanged" (anti-thrashing: noise
    #: around the declared value never triggers a replan).
    change_threshold: float = 0.25
    #: Bounded reservoir size for tick-level service-time samples.
    reservoir_size: int = 64

    def __post_init__(self) -> None:
        if self.window_ticks < 1:
            raise ValueError(f"window_ticks must be >= 1, got {self.window_ticks}")
        if self.min_items < 1:
            raise ValueError(f"min_items must be >= 1, got {self.min_items}")
        if self.change_threshold < 0.0:
            raise ValueError(
                f"change_threshold must be >= 0, got {self.change_threshold}")
        if self.reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {self.reservoir_size}")


@dataclass(frozen=True)
class TickSample:
    """Counter deltas of one vertex over one control period."""

    processed: int
    emitted: int
    busy_time: float


@dataclass(frozen=True)
class VertexEstimate:
    """The estimator's current belief about one operator."""

    vertex: str
    #: Measured mean service time over the window; ``None`` when the
    #: window processed nothing.
    service_time: Optional[float]
    #: Measured selectivity gain (emitted / processed) over the window.
    gain: Optional[float]
    #: Processed items backing the estimate.
    samples: int
    #: Whether the window clears the ``min_items`` confidence gate.
    confident: bool

    def service_changed(self, declared: float,
                        threshold: float) -> bool:
        """Did the measured service time drift beyond ``threshold``?"""
        if not self.confident or self.service_time is None or declared <= 0.0:
            return False
        return abs(self.service_time - declared) / declared > threshold

    def gain_changed(self, declared: float, threshold: float) -> bool:
        """Did the measured gain drift beyond ``threshold``?"""
        if not self.confident or self.gain is None:
            return False
        if declared <= 0.0:
            return self.gain > threshold
        return abs(self.gain - declared) / declared > threshold


class OnlineEstimator:
    """Sliding-window estimator over one vertex's counter deltas.

    Feed :meth:`observe` once per control tick with the tick's counter
    deltas (processed, emitted, busy seconds); read :meth:`estimate`
    for the windowed belief.  Pure counter arithmetic — two estimators
    fed the same tick sequence agree bit for bit.
    """

    def __init__(self, vertex: str, config: Optional[EstimatorConfig] = None,
                 seed: int = 1) -> None:
        self.vertex = vertex
        self.config = config or EstimatorConfig()
        self._window: Deque[TickSample] = deque(maxlen=self.config.window_ticks)
        self._rng = random.Random(seed)
        #: Seeded reservoir of tick-level mean service times (Algorithm
        #: R) for percentile queries over long runs at bounded memory.
        self._reservoir: List[float] = []
        self._reservoir_seen = 0
        #: Ticks observed over the estimator's lifetime.
        self.ticks = 0

    def observe(self, processed: int, emitted: int,
                busy_time: float) -> None:
        """Record one control period's counter deltas."""
        if processed < 0 or emitted < 0 or busy_time < 0.0:
            raise ValueError(
                f"{self.vertex}: counter deltas must be non-negative "
                f"(got processed={processed}, emitted={emitted}, "
                f"busy_time={busy_time})")
        self.ticks += 1
        self._window.append(TickSample(processed, emitted, busy_time))
        if processed > 0:
            self._offer_reservoir(busy_time / processed)

    def _offer_reservoir(self, sample: float) -> None:
        self._reservoir_seen += 1
        if len(self._reservoir) < self.config.reservoir_size:
            self._reservoir.append(sample)
            return
        slot = self._rng.randrange(self._reservoir_seen)
        if slot < self.config.reservoir_size:
            self._reservoir[slot] = sample

    def estimate(self) -> VertexEstimate:
        """The windowed belief as of the last observed tick."""
        processed = sum(sample.processed for sample in self._window)
        emitted = sum(sample.emitted for sample in self._window)
        busy = sum(sample.busy_time for sample in self._window)
        service = busy / processed if processed > 0 else None
        gain = emitted / processed if processed > 0 else None
        return VertexEstimate(
            vertex=self.vertex,
            service_time=service,
            gain=gain,
            samples=processed,
            confident=processed >= self.config.min_items,
        )

    def service_percentile(self, q: float) -> Optional[float]:
        """Percentile ``q`` in [0, 1] of the reservoir's tick means."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {q}")
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def reset(self) -> None:
        """Forget the window (after a reconfiguration changed the
        regime the window measured — old ticks would pollute the new
        steady state)."""
        self._window.clear()


def window_estimates(
    estimators: "dict[str, OnlineEstimator]",
) -> Tuple[VertexEstimate, ...]:
    """All estimators' current beliefs, in sorted vertex order."""
    return tuple(estimators[name].estimate() for name in sorted(estimators))
