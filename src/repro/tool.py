"""The SpinStreams tool facade: the programmatic workflow of Section 4.

The original tool is a GUI: the user imports a topology (XML plus
operator classes), runs the steady-state analysis, asks for bottleneck
elimination or fusion, inspects each prototyped version, and finally
generates the code for the target SPS.  :class:`SpinStreams` is that
workflow as an object: every optimization produces a new named
*version* kept in the session, and any version can be analyzed,
rendered, simulated or compiled to a runnable program.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.diagnostics import LintReport
from repro.analysis.lint import lint_topology
from repro.codegen.deployment import deployment_json, flink_sketch, storm_sketch
from repro.codegen.ss2py import CodegenConfig, generate_code
from repro.core.autofusion import AutoFusionResult, auto_fuse
from repro.core.candidates import FusionCandidate, enumerate_candidates
from repro.core.fission import FissionResult, eliminate_bottlenecks
from repro.core.fusion import FusionPlan, FusionResult, apply_fusion
from repro.core.graph import Topology, TopologyError
from repro.core.latency import LatencyEstimate, estimate_latency
from repro.core.memory import MemoryEstimate, estimate_memory
from repro.core.report import analysis_report
from repro.core.solver import analyze_cached
from repro.core.steady_state import SteadyStateResult
from repro.sim.network import SimulationConfig, SimulationResult, simulate
from repro.topology.dot import topology_to_dot
from repro.topology.xmlio import parse_topology, topology_to_xml


@dataclass
class TopologyVersion:
    """One prototyped version of an imported application."""

    name: str
    topology: Topology
    parent: Optional[str]
    note: str
    fusion_plans: List[FusionPlan]

    def __str__(self) -> str:
        return f"{self.name}: {self.note} ({len(self.topology)} operators)"


class SpinStreams:
    """A SpinStreams session over one imported application.

    Usage::

        tool = SpinStreams.from_xml("app.xml")    # or SpinStreams(topology)
        print(tool.report())                       # steady-state analysis
        tool.eliminate_bottlenecks()               # version 'fission-1'
        tool.fuse(["op4", "op5"])                  # version 'fusion-1'
        code = tool.generate_code("fusion-1")      # SS2Py program
    """

    def __init__(self, topology: Topology) -> None:
        self.versions: Dict[str, TopologyVersion] = {}
        self._counter: Dict[str, int] = {}
        self._add_version("initial", topology, parent=None,
                          note="imported topology")
        self.current = "initial"

    @classmethod
    def from_xml(cls, source: Union[str, "os.PathLike[str]"]) -> "SpinStreams":
        """Import an application from its XML description."""
        return cls(parse_topology(source))

    # ------------------------------------------------------------------
    # version bookkeeping
    # ------------------------------------------------------------------
    def _add_version(self, kind: str, topology: Topology,
                     parent: Optional[str], note: str,
                     fusion_plans: Sequence[FusionPlan] = ()) -> str:
        if kind == "initial":
            name = "initial"
        else:
            self._counter[kind] = self._counter.get(kind, 0) + 1
            name = f"{kind}-{self._counter[kind]}"
        self.versions[name] = TopologyVersion(
            name=name,
            topology=topology,
            parent=parent,
            note=note,
            fusion_plans=list(fusion_plans),
        )
        return name

    def version(self, name: Optional[str] = None) -> TopologyVersion:
        key = name or self.current
        try:
            return self.versions[key]
        except KeyError:
            raise TopologyError(
                f"unknown version {key!r}; have {sorted(self.versions)}"
            ) from None

    def topology(self, name: Optional[str] = None) -> Topology:
        return self.version(name).topology

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def analyze(self, name: Optional[str] = None,
                source_rate: Optional[float] = None) -> SteadyStateResult:
        """Steady-state analysis (Algorithm 1) of a version (memoized)."""
        return analyze_cached(self.topology(name), source_rate=source_rate)

    def lint(self, name: Optional[str] = None, check_code: bool = True,
             source_rate: Optional[float] = None) -> LintReport:
        """Static checks (graph verifier + operator-code analyzer)."""
        return lint_topology(self.topology(name), check_code=check_code,
                             source_rate=source_rate)

    def report(self, name: Optional[str] = None,
               source_rate: Optional[float] = None) -> str:
        """Human-readable analysis report of a version."""
        return analysis_report(self.analyze(name, source_rate=source_rate))

    def render(self, name: Optional[str] = None) -> str:
        """DOT rendering of a version annotated with utilizations."""
        topology = self.topology(name)
        return topology_to_dot(topology, analyze_cached(topology))

    def simulate(self, name: Optional[str] = None,
                 config: Optional[SimulationConfig] = None,
                 source_rate: Optional[float] = None) -> SimulationResult:
        """Measure a version on the discrete-event backend."""
        return simulate(self.topology(name), config=config,
                        source_rate=source_rate)

    # ------------------------------------------------------------------
    # optimizations
    # ------------------------------------------------------------------
    def eliminate_bottlenecks(
        self,
        name: Optional[str] = None,
        source_rate: Optional[float] = None,
        max_replicas: Optional[int] = None,
        code_safety: str = "enforce",
    ) -> FissionResult:
        """Run bottleneck elimination; registers a ``fission-N`` version."""
        base = self.version(name)
        result = eliminate_bottlenecks(
            base.topology, source_rate=source_rate, max_replicas=max_replicas,
            code_safety=code_safety,
        )
        bound = f", bound={max_replicas}" if max_replicas is not None else ""
        outcome = ("ideal throughput" if result.ideal_throughput_reached
                   else "residual bottlenecks")
        version = self._add_version(
            "fission", result.optimized, parent=base.name,
            note=(f"bottleneck elimination of {base.name} "
                  f"(+{result.additional_replicas} replicas{bound}; "
                  f"{outcome})"),
            fusion_plans=base.fusion_plans,
        )
        self.current = version
        return result

    def fusion_candidates(self, name: Optional[str] = None,
                          max_size: int = 4,
                          max_utilization: float = 0.75,
                          limit: Optional[int] = 20) -> List[FusionCandidate]:
        """Ranked fusion candidates of a version (Section 4.1)."""
        topology = self.topology(name)
        return enumerate_candidates(
            topology, max_size=max_size, max_utilization=max_utilization,
            limit=limit,
        )

    def fuse(self, members: Sequence[str], name: Optional[str] = None,
             fused_name: Optional[str] = None,
             source_rate: Optional[float] = None) -> FusionResult:
        """Fuse a sub-graph; registers a ``fusion-N`` version.

        The version is registered even when the fusion is predicted to
        impair performance — the result's ``impairs_performance`` flag
        is the alert the user decides on.
        """
        base = self.version(name)
        result = apply_fusion(base.topology, members, fused_name=fused_name,
                              source_rate=source_rate)
        outcome = ("impairs performance" if result.impairs_performance
                   else "feasible")
        version = self._add_version(
            "fusion", result.fused, parent=base.name,
            note=f"fusion of {', '.join(result.plan.members)} ({outcome})",
            fusion_plans=list(base.fusion_plans) + [result.plan],
        )
        self.current = version
        return result

    def auto_fuse(self, name: Optional[str] = None,
                  source_rate: Optional[float] = None,
                  **kwargs) -> AutoFusionResult:
        """Automatic fusion (extension); registers an ``autofuse-N`` version."""
        base = self.version(name)
        result = auto_fuse(base.topology, source_rate=source_rate, **kwargs)
        version = self._add_version(
            "autofuse", result.fused, parent=base.name,
            note=(f"automatic fusion of {base.name} "
                  f"({result.operators_removed} operators removed in "
                  f"{result.rounds} rounds)"),
            fusion_plans=list(base.fusion_plans) + result.plans,
        )
        self.current = version
        return result

    # ------------------------------------------------------------------
    # extended analyses (latency, memory)
    # ------------------------------------------------------------------
    def estimate_latency(self, name: Optional[str] = None,
                         source_rate: Optional[float] = None,
                         **kwargs) -> LatencyEstimate:
        """Static end-to-end latency estimate of a version."""
        return estimate_latency(self.topology(name),
                                source_rate=source_rate, **kwargs)

    def estimate_memory(self, name: Optional[str] = None,
                        source_rate: Optional[float] = None,
                        **kwargs) -> MemoryEstimate:
        """Static memory-footprint estimate of a version."""
        return estimate_memory(self.topology(name),
                               source_rate=source_rate, **kwargs)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def deployment_plan(self, name: Optional[str] = None,
                        format: str = "json") -> str:
        """Deployment export of a version (``json``/``flink``/``storm``)."""
        topology = self.topology(name)
        if format == "json":
            return deployment_json(
                topology, fusion_plans=self.version(name).fusion_plans)
        if format == "flink":
            return flink_sketch(topology)
        if format == "storm":
            return storm_sketch(topology)
        raise TopologyError(f"unknown deployment format {format!r}")

    def to_xml(self, name: Optional[str] = None) -> str:
        """XML description of a version."""
        return topology_to_xml(self.topology(name))

    def generate_code(self, name: Optional[str] = None,
                      config: Optional[CodegenConfig] = None) -> str:
        """SS2Py program for a version (fusion plans included)."""
        version = self.version(name)
        original = self.versions["initial"].topology
        return generate_code(
            version.topology,
            original=original,
            fusion_plans=version.fusion_plans,
            config=config,
        )

    def history(self) -> List[str]:
        """Human-readable list of the prototyped versions."""
        return [str(version) for version in self.versions.values()]
