"""Workload generators: record factories for sources.

Factories follow the :class:`repro.operators.source_sink.GeneratorSource`
protocol — ``factory(sequence, rng) -> Record`` — and cover the
scenarios the examples and benchmarks exercise: uniform synthetic
tuples, ZipF-keyed streams (skewed partitioning keys), sensor readings
and market quotes.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Sequence

from repro.operators.base import Record

RecordFactory = Callable[[int, random.Random], Record]


def uniform_records(num_keys: int = 64,
                    value_range: float = 1.0) -> RecordFactory:
    """Uniform values and uniformly distributed keys."""
    def factory(sequence: int, rng: random.Random) -> Record:
        return Record({
            "sequence": sequence,
            "key": f"k{rng.randrange(num_keys)}",
            "value": rng.random() * value_range,
        })
    return factory


def zipf_keyed_records(num_keys: int = 256, alpha: float = 1.2) -> RecordFactory:
    """Skewed (ZipF) key popularity — the stress case for partitioning."""
    if num_keys < 1:
        raise ValueError(f"num_keys must be >= 1, got {num_keys}")
    weights = [1.0 / (rank ** alpha) for rank in range(1, num_keys + 1)]
    total = sum(weights)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)

    def factory(sequence: int, rng: random.Random) -> Record:
        draw = rng.random()
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < draw:
                low = mid + 1
            else:
                high = mid
        return Record({
            "sequence": sequence,
            "key": f"k{low}",
            "value": rng.random(),
        })
    return factory


def sensor_readings(num_sensors: int = 32, period: float = 500.0,
                    noise: float = 0.1) -> RecordFactory:
    """Sinusoidal sensor temperatures with noise (monitoring scenario)."""
    def factory(sequence: int, rng: random.Random) -> Record:
        sensor = sequence % num_sensors
        phase = 2.0 * math.pi * (sequence / period + sensor / num_sensors)
        temperature = 20.0 + 5.0 * math.sin(phase) + rng.gauss(0.0, noise)
        return Record({
            "sequence": sequence,
            "key": f"sensor{sensor}",
            "sensor": sensor,
            "value": temperature,
            "battery": max(0.0, 1.0 - sequence / 1e7),
        })
    return factory


def market_quotes(symbols: Sequence[str] = ("ACME", "GLOBEX", "INITECH",
                                            "UMBRELLA", "HOOLI"),
                  volatility: float = 0.02) -> RecordFactory:
    """Random-walk stock quotes (financial analytics scenario)."""
    prices = {symbol: 100.0 * (1.0 + index)
              for index, symbol in enumerate(symbols)}

    def factory(sequence: int, rng: random.Random) -> Record:
        symbol = symbols[rng.randrange(len(symbols))]
        prices[symbol] *= math.exp(rng.gauss(0.0, volatility))
        return Record({
            "sequence": sequence,
            "key": symbol,
            "symbol": symbol,
            "value": prices[symbol],
            "volume": rng.randrange(1, 1000),
        })
    return factory


def spatial_points(dimensions: int = 2) -> RecordFactory:
    """Random points for skyline queries (one field per dimension)."""
    names = [chr(ord("x") + i) if i < 3 else f"d{i}" for i in range(dimensions)]

    def factory(sequence: int, rng: random.Random) -> Record:
        record = Record({"sequence": sequence, "key": f"k{sequence % 16}"})
        for name in names:
            record[name] = rng.random()
        record["value"] = record[names[0]]
        return record
    return factory
