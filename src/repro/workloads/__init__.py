"""Workload generators for examples and benchmarks."""

from repro.workloads.generators import (
    RecordFactory,
    market_quotes,
    sensor_readings,
    spatial_points,
    uniform_records,
    zipf_keyed_records,
)

__all__ = [
    "RecordFactory",
    "market_quotes",
    "sensor_readings",
    "spatial_points",
    "uniform_records",
    "zipf_keyed_records",
]
