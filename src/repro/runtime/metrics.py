"""Runtime metrics: per-actor counters and steady-state rate snapshots."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


class ActorCounters:
    """Mutable counters updated by one actor thread.

    Counter increments are single bytecode-level operations on ints and
    floats, which CPython's GIL keeps consistent; readers may observe a
    value that is a few messages stale, which is irrelevant for rate
    measurement over seconds.
    """

    __slots__ = ("received", "processed", "emitted", "failed", "dropped",
                 "restarts", "busy_time", "blocked_time", "service_samples",
                 "latency_sum", "latency_count")

    def __init__(self) -> None:
        self.received = 0
        self.processed = 0
        self.emitted = 0
        #: Items whose operator_function raised; the supervisor decided
        #: what happened to the actor, and the item went to dead letters.
        self.failed = 0
        #: Items this actor failed to deliver downstream because the
        #: destination mailbox stayed full past the put timeout.
        self.dropped = 0
        #: Times this actor's operator was re-instantiated by its
        #: supervisor (Restart directive).
        self.restarts = 0
        self.busy_time = 0.0
        self.blocked_time = 0.0
        self.service_samples: List[float] = []
        # End-to-end latency of items consumed here (sinks only);
        # fed by the birth timestamps sources stamp into records.
        self.latency_sum = 0.0
        self.latency_count = 0

    def snapshot(self) -> "CounterSnapshot":
        return CounterSnapshot(
            received=self.received,
            processed=self.processed,
            emitted=self.emitted,
            failed=self.failed,
            dropped=self.dropped,
            restarts=self.restarts,
            busy_time=self.busy_time,
            blocked_time=self.blocked_time,
            latency_sum=self.latency_sum,
            latency_count=self.latency_count,
        )

    def mean_service_time(self) -> Optional[float]:
        """Mean profiled service time, or ``None`` without samples."""
        if self.processed == 0:
            return None
        return self.busy_time / self.processed


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable copy of an actor's counters at one instant."""

    received: int = 0
    processed: int = 0
    emitted: int = 0
    failed: int = 0
    dropped: int = 0
    restarts: int = 0
    busy_time: float = 0.0
    blocked_time: float = 0.0
    latency_sum: float = 0.0
    latency_count: int = 0


@dataclass(frozen=True)
class ActorRates:
    """Measured steady-state rates of one actor over a window."""

    name: str
    vertex: str
    arrival_rate: float
    processing_rate: float
    departure_rate: float
    utilization: float
    blocked_fraction: float
    mean_latency: Optional[float] = None
    latency_samples: int = 0
    #: Counts over the measurement window (not rates): items whose
    #: processing failed, deliveries dropped on put timeout, restarts.
    failed: int = 0
    dropped: int = 0
    restarts: int = 0


@dataclass(frozen=True)
class RuntimeMeasurements:
    """Rates of a whole actor system over the measurement window."""

    duration: float
    actors: Mapping[str, ActorRates]
    #: Cumulative counters at shutdown (whole run, not just the
    #: measurement window) — where total drop/failure accounting and
    #: the no-fault conformance drop check read from.
    totals: Mapping[str, CounterSnapshot] = field(default_factory=dict)

    def total_dropped(self) -> int:
        """Messages silently lost to put timeouts over the whole run."""
        return sum(s.dropped for s in self.totals.values())

    def total_failed(self) -> int:
        return sum(s.failed for s in self.totals.values())

    def total_restarts(self) -> int:
        return sum(s.restarts for s in self.totals.values())

    def vertex_rates(self) -> Dict[str, ActorRates]:
        """Aggregate actor rates by topology vertex (replicas summed).

        Utilization and blocked fraction take the max across replicas —
        the binding replica is what the cost model reasons about.
        """
        grouped: Dict[str, List[ActorRates]] = {}
        for rates in self.actors.values():
            grouped.setdefault(rates.vertex, []).append(rates)
        out: Dict[str, ActorRates] = {}
        for vertex, members in grouped.items():
            samples = sum(m.latency_samples for m in members)
            if samples:
                mean_latency = sum(
                    (m.mean_latency or 0.0) * m.latency_samples
                    for m in members
                ) / samples
            else:
                mean_latency = None
            out[vertex] = ActorRates(
                name=vertex,
                vertex=vertex,
                arrival_rate=sum(m.arrival_rate for m in members),
                processing_rate=sum(m.processing_rate for m in members),
                departure_rate=sum(m.departure_rate for m in members),
                utilization=max(m.utilization for m in members),
                blocked_fraction=max(m.blocked_fraction for m in members),
                mean_latency=mean_latency,
                latency_samples=samples,
                failed=sum(m.failed for m in members),
                dropped=sum(m.dropped for m in members),
                restarts=sum(m.restarts for m in members),
            )
        return out


def rates_between(
    name: str,
    vertex: str,
    before: CounterSnapshot,
    after: CounterSnapshot,
    duration: float,
) -> ActorRates:
    """Compute actor rates from two snapshots ``duration`` seconds apart."""
    if duration <= 0.0:
        raise ValueError(f"duration must be positive, got {duration}")
    samples = after.latency_count - before.latency_count
    return ActorRates(
        name=name,
        vertex=vertex,
        arrival_rate=(after.received - before.received) / duration,
        processing_rate=(after.processed - before.processed) / duration,
        departure_rate=(after.emitted - before.emitted) / duration,
        utilization=(after.busy_time - before.busy_time) / duration,
        blocked_fraction=(after.blocked_time - before.blocked_time) / duration,
        mean_latency=((after.latency_sum - before.latency_sum) / samples
                      if samples else None),
        latency_samples=samples,
        failed=after.failed - before.failed,
        dropped=after.dropped - before.dropped,
        restarts=after.restarts - before.restarts,
    )
