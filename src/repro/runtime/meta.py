"""Meta-operator actor: one actor executing a fused sub-graph.

Implements the paper's Algorithm 4: each input message is processed by
the front-end operator's function; results headed to operators inside
the fused sub-graph are processed in place (sequential composition of
the functions along the item's path), and results headed outside are
sent to the corresponding actor's mailbox.  The sub-graph is acyclic by
construction, so the inner loop always terminates.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.fusion import FusionPlan
from repro.operators.base import Operator, WrappedItem, destination_of, unwrap
from repro.runtime.actors import ActorBase, Router
from repro.runtime.mailbox import BoundedMailbox


class _MemberRouting:
    """Sampling of one fused member's original out-edges."""

    __slots__ = ("targets", "cumulative")

    def __init__(self, targets: List[str], probabilities: List[float]) -> None:
        self.targets = targets
        self.cumulative: List[float] = []
        total = 0.0
        for probability in probabilities:
            total += probability
            self.cumulative.append(total)

    def pick(self, rng: random.Random) -> Optional[str]:
        if not self.targets:
            return None
        if len(self.targets) == 1:
            return self.targets[0]
        draw = rng.random() * self.cumulative[-1]
        for index, bound in enumerate(self.cumulative):
            if draw < bound:
                return self.targets[index]
        return self.targets[-1]


class MetaOperatorActor(ActorBase):
    """The single actor executing a fused sub-graph (Algorithm 4).

    Parameters
    ----------
    plan:
        The fusion plan (members, front-end, original member edges).
    members:
        The executable operators of the fused sub-graph, by name.
    router:
        Routing table toward external targets (one entry per exit
        vertex of the fused operator).
    """

    def __init__(self, name: str, plan: FusionPlan,
                 members: Mapping[str, Operator], router: Router,
                 mailbox: BoundedMailbox, stop_event: threading.Event,
                 seed: int = 1) -> None:
        super().__init__(name, name, mailbox, stop_event)
        missing = sorted(set(plan.members) - set(members))
        if missing:
            raise ValueError(f"missing member operators: {missing}")
        self.plan = plan
        self.members = dict(members)
        self.router = router
        self._rng = random.Random(seed)
        self._member_set = frozenset(plan.members)
        self._routing: Dict[str, _MemberRouting] = {}
        for member in plan.members:
            edges = [e for e in plan.member_edges if e.source == member]
            self._routing[member] = _MemberRouting(
                targets=[e.target for e in edges],
                probabilities=[e.probability for e in edges],
            )

    def on_start(self) -> None:
        for operator in self.members.values():
            operator.on_start()

    def on_stop(self) -> None:
        for operator in self.members.values():
            operator.on_stop()

    def handle(self, message: Tuple[Any, str]) -> None:
        payload, origin = message
        self.counters.received += 1
        if isinstance(payload, dict):
            payload["origin"] = origin

        external: List[Tuple[str, Any]] = []
        pending: Deque[Tuple[str, Any, str]] = deque()
        pending.append((self.plan.front_end, payload, origin))

        started = time.perf_counter()
        while pending:
            member_name, item, item_origin = pending.popleft()
            operator = self.members[member_name]
            if isinstance(item, dict):
                item["origin"] = item_origin
            outputs = operator.operator_function(item)
            for output in outputs:
                destination = destination_of(output)
                if destination is None:
                    destination = self._routing[member_name].pick(self._rng)
                if destination is None:
                    self.counters.emitted += 1  # a fused sink consumed it
                    continue
                if destination in self._member_set:
                    pending.append((destination, unwrap(output), member_name))
                else:
                    external.append((destination, unwrap(output)))
        self.counters.busy_time += time.perf_counter() - started
        self.counters.processed += 1

        # Deliveries happen after the busy section so measured service
        # time excludes the (possibly blocking) sends, matching how the
        # cost model separates service from backpressure.
        for destination, item in external:
            target = self.router.resolve(WrappedItem(item, destination))
            if target is None:
                self.counters.emitted += 1
                continue
            self._send(target, item)
