"""Meta-operator actor: one actor executing a fused sub-graph.

Implements the paper's Algorithm 4: each input message is processed by
the front-end operator's function; results headed to operators inside
the fused sub-graph are processed in place (sequential composition of
the functions along the item's path), and results headed outside are
sent to the corresponding actor's mailbox.  The sub-graph is acyclic by
construction, so the inner loop always terminates.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.fusion import FusionPlan
from repro.operators.base import Operator, WrappedItem, destination_of, unwrap
from repro.runtime.actors import ActorBase, Router
from repro.runtime.mailbox import BoundedMailbox
from repro.runtime.supervision import (
    ActorContext,
    ActorStopped,
    Directive,
    RestartTracker,
    SupervisionEvent,
    SupervisorStrategy,
)


class _MemberRouting:
    """Sampling of one fused member's original out-edges."""

    __slots__ = ("targets", "cumulative")

    def __init__(self, targets: List[str], probabilities: List[float]) -> None:
        self.targets = targets
        self.cumulative: List[float] = []
        total = 0.0
        for probability in probabilities:
            total += probability
            self.cumulative.append(total)

    def pick(self, rng: random.Random) -> Optional[str]:
        if not self.targets:
            return None
        if len(self.targets) == 1:
            return self.targets[0]
        draw = rng.random() * self.cumulative[-1]
        for index, bound in enumerate(self.cumulative):
            if draw < bound:
                return self.targets[index]
        return self.targets[-1]


class MetaOperatorActor(ActorBase):
    """The single actor executing a fused sub-graph (Algorithm 4).

    Parameters
    ----------
    plan:
        The fusion plan (members, front-end, original member edges).
    members:
        The executable operators of the fused sub-graph, by name.
    router:
        Routing table toward external targets (one entry per exit
        vertex of the fused operator).
    """

    def __init__(self, name: str, plan: FusionPlan,
                 members: Mapping[str, Operator], router: Router,
                 mailbox: BoundedMailbox, stop_event: threading.Event,
                 seed: int = 1,
                 member_factories: Optional[
                     Mapping[str, Callable[[], Operator]]] = None,
                 strategy: Optional[SupervisorStrategy] = None,
                 context: Optional[ActorContext] = None) -> None:
        super().__init__(name, name, mailbox, stop_event, context=context)
        missing = sorted(set(plan.members) - set(members))
        if missing:
            raise ValueError(f"missing member operators: {missing}")
        self.plan = plan
        self.members = dict(members)
        self.router = router
        self._rng = random.Random(seed)
        self._member_set = frozenset(plan.members)
        self._routing: Dict[str, _MemberRouting] = {}
        for member in plan.members:
            edges = [e for e in plan.member_edges if e.source == member]
            self._routing[member] = _MemberRouting(
                targets=[e.target for e in edges],
                probabilities=[e.probability for e in edges],
            )
        # Member-level supervision: each fused member keeps the policy
        # and restart budget it would have as a standalone actor; a
        # member failure must not corrupt the routing of items headed
        # to the other members.
        self.strategy = strategy or SupervisorStrategy()
        self.member_factories = dict(member_factories or {})
        self._trackers: Dict[str, RestartTracker] = {
            member: RestartTracker(self.strategy.policy_for(member))
            for member in plan.members
        }
        self._stopped: Set[str] = set()

    def on_start(self) -> None:
        for operator in self.members.values():
            operator.on_start()

    def on_stop(self) -> None:
        for operator in self.members.values():
            operator.on_stop()

    def checkpoint_state(self) -> Dict[str, Any]:
        """Epoch snapshot of the whole fused sub-graph.

        Barriers align on the meta-actor's mailbox like on any other
        entry actor; the internal member-to-member streams are plain
        function composition on this thread, so one blob covering every
        member *is* the consistent cut of the sub-graph.
        """
        return {
            "members": {name: operator.snapshot_state()
                        for name, operator in self.members.items()},
            "rng": self._rng.getstate(),
            "router": self.router.state(),
            "stopped": set(self._stopped),
        }

    def checkpoint_restore(self, blob: Mapping[str, Any]) -> None:
        for name, state in blob["members"].items():
            self.members[name].restore_state(state)
        self._rng.setstate(blob["rng"])
        self.router.restore(blob["router"])
        self._stopped = set(blob["stopped"])

    def _migrate_member(self, member: str) -> Optional[str]:
        """Checkpoint one member, rebuild it, restore; error or ``None``."""
        if member not in self.member_factories:
            return f"{member}: no member factory, cannot migrate"
        try:
            blob = self.members[member].snapshot_state()
            fresh = self.member_factories[member]()
            fresh.on_start()
            fresh.restore_state(blob)
        except Exception as error:
            return f"{member}: {type(error).__name__}: {error}"
        old = self.members[member]
        self.members[member] = fresh
        try:
            old.on_stop()
        except Exception:
            pass  # the old instance is being discarded; best-effort
        return None

    def _on_migrate(self, ticket) -> None:
        """Drain-and-migrate fused members in-band (zero tuple loss).

        The ticket names one member or, with ``member=None``, migrates
        every live member of the sub-graph.  Member-to-member streams
        are function composition on this thread, so migrating between
        two ``handle`` calls is a consistent cut by construction.
        """
        names = ([ticket.member] if ticket.member is not None
                 else [m for m in self.plan.members if m not in self._stopped])
        errors = [error for error in map(self._migrate_member, names)
                  if error is not None]
        if not errors:
            self.migrations += 1
        ticket.acknowledge("; ".join(errors) if errors else None)

    def _log_event(self, member: str, directive: Directive,
                   error: BaseException) -> None:
        self.context.supervision.record(SupervisionEvent(
            time=self.context.now(),
            vertex=member,
            actor=self.actor_name,
            directive=directive.value,
            reason=f"{type(error).__name__}: {error}",
            item_index=self.counters.received - 1,
            restarts=self._trackers[member].total,
        ))

    def _restart_member(self, member: str) -> bool:
        try:
            self.members[member].on_stop()
        except Exception:
            pass  # old instance is broken; teardown is best-effort
        policy = self.strategy.policy_for(member)
        backoff = policy.backoff(self._trackers[member].in_window)
        if backoff > 0.0:
            self.stop_event.wait(backoff)
        try:
            fresh = self.member_factories[member]()
            fresh.on_start()
        except Exception:
            return False
        self.members[member] = fresh
        self.counters.restarts += 1
        return True

    def _stop_member(self, member: str) -> None:
        """Stop one fused member; the meta-actor itself keeps serving.

        Items later routed to a stopped member land in dead letters,
        exactly as they would hit a diverted mailbox were the member a
        standalone actor.  When the *front-end* stops, no input can be
        served at all: the whole meta-actor stops and (policy allowing)
        diverts its mailbox.
        """
        self._stopped.add(member)
        if member == self.plan.front_end:
            policy = self.strategy.policy_for(member)
            if policy.divert_on_stop:
                sink = self.context.dead_letters
                self.mailbox.divert(
                    lambda message: sink.record(member, message[0],
                                                "stopped-actor"))
            raise ActorStopped

    def _on_member_failure(self, member: str, item: Any,
                           error: BaseException) -> None:
        self.counters.failed += 1
        policy = self.strategy.policy_for(member)
        directive = policy.decide(error)
        if (directive is Directive.RESTART
                and self.context.request_recovery is not None):
            # Checkpointed run: roll the whole system back instead of
            # rebuilding the member cold.  The item is not dead-lettered
            # — the replay re-delivers it through the front-end.
            self._log_event(member, directive, error)
            self.context.request_recovery(
                member, f"{type(error).__name__}: {error}")
            if policy.divert_on_stop:
                sink = self.context.dead_letters
                self.mailbox.divert(
                    lambda message: sink.record(member, message[0],
                                                "stopped-actor"))
            raise ActorStopped
        if directive is Directive.RESTART:
            if member not in self.member_factories:
                directive = Directive.RESUME
            elif self._trackers[member].record(self.context.now()):
                directive = policy.exhausted_directive()
        self._log_event(member, directive, error)
        if directive is not Directive.ESCALATE:
            self.context.dead_letters.record(
                member, item, f"supervision-{directive.value}")
        if directive is Directive.RESUME:
            return
        if directive is Directive.RESTART:
            if not self._restart_member(member):
                self._log_event(member, Directive.STOP,
                                RuntimeError("restart failed"))
                self._stop_member(member)
            return
        if directive is Directive.STOP:
            self._stop_member(member)
            return
        self.context.escalate(member, f"{type(error).__name__}: {error}")
        raise ActorStopped

    def handle(self, message: Tuple[Any, str]) -> None:
        payload, origin = message
        self.counters.received += 1
        if isinstance(payload, dict):
            payload["origin"] = origin

        external: List[Tuple[str, Any]] = []
        pending: Deque[Tuple[str, Any, str]] = deque()
        pending.append((self.plan.front_end, payload, origin))

        started = time.perf_counter()
        while pending:
            member_name, item, item_origin = pending.popleft()
            if member_name in self._stopped:
                # The member's "mailbox" is diverted: the item is dead-
                # lettered and the rest of the batch routes normally.
                self.context.dead_letters.record(
                    member_name, item, "stopped-member")
                continue
            operator = self.members[member_name]
            if isinstance(item, dict):
                item["origin"] = item_origin
            try:
                outputs = operator.operator_function(item)
            except Exception as error:
                # Close the busy window before supervising: restart
                # backoff is downtime, not service time.
                now = time.perf_counter()
                self.counters.busy_time += now - started
                self._on_member_failure(member_name, item, error)
                started = time.perf_counter()
                continue
            for output in outputs:
                destination = destination_of(output)
                if destination is None:
                    destination = self._routing[member_name].pick(self._rng)
                if destination is None:
                    self.counters.emitted += 1  # a fused sink consumed it
                    continue
                if destination in self._member_set:
                    pending.append((destination, unwrap(output), member_name))
                else:
                    external.append((destination, unwrap(output)))
        self.counters.busy_time += time.perf_counter() - started
        self.counters.processed += 1

        # Deliveries happen after the busy section so measured service
        # time excludes the (possibly blocking) sends, matching how the
        # cost model separates service from backpressure.
        for destination, item in external:
            target = self.router.resolve(WrappedItem(item, destination))
            if target is None:
                self.counters.emitted += 1
                continue
            self._send(target, item)
