"""The actor system: build, run and measure a topology on threads.

``ActorSystem.build`` wires one actor per single-replica operator, an
emitter + replicas + collector ensemble per parallelized operator
(Section 4.2 "Generation of parallel operators") and one meta-operator
actor per fused sub-graph ("Generation with operator fusion").  ``run``
executes the system for a wall-clock duration, snapshots the counters
after a warmup period, and returns per-vertex steady-state rates
comparable one-to-one with the cost-model predictions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.core.fusion import FusionPlan
from repro.core.graph import (
    CheckpointConfig,
    Edge,
    StateKind,
    Topology,
    TopologyError,
)
from repro.core.partitioning import key_partitioning
from repro.core.steady_state import SteadyStateResult
from repro.operators.base import Operator, instantiate_operator, unwrap

if TYPE_CHECKING:  # imported lazily at runtime (repro.faults imports
    # repro.runtime.supervision, which triggers this package's __init__)
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
from repro.runtime.actors import (
    ActorBase,
    BatchingTarget,
    CollectorActor,
    EmitterActor,
    OperatorActor,
    Router,
    ScaleDirective,
    SourceActor,
    Target,
)
from repro.runtime.checkpoint import (
    CheckpointRestoreError,
    CheckpointSession,
    MigrationTicket,
)
from repro.runtime.mailbox import BoundedMailbox
from repro.runtime.meta import MetaOperatorActor
from repro.runtime.metrics import (
    ActorRates,
    CounterSnapshot,
    RuntimeMeasurements,
    rates_between,
)
from repro.runtime.supervision import (
    ActorContext,
    BlockedActor,
    DeadLetterSink,
    StallWatchdog,
    SupervisionLog,
    SupervisorStrategy,
    WatchdogReport,
    attach_leak,
)

OperatorFactory = Callable[[], Operator]


@dataclass
class _Ensemble:
    """Live-scaling wiring of one elastic vertex.

    Kept only for vertices built as emitter + replicas + collector so
    the controller can spawn/retire replicas mid-run: the spawn closure
    reproduces exactly what ``_defer_parallel`` builds per replica
    (mailbox, per-replica router into the collector, operator factory
    with its own fault clock).
    """

    vertex: str
    emitter: EmitterActor
    #: ``spawn(index)`` builds one fresh, unstarted replica.
    spawn: Callable[[int], "Tuple[Target, OperatorActor]"]
    #: Next fresh replica index (never reused, so actor names and fault
    #: clock keys stay unique across scale up/down cycles).
    next_index: int
    #: Live replicas in emitter order (target, actor) — the emitter's
    #: ``replicas`` list is always a projection of this.
    members: "List[Tuple[Target, OperatorActor]]"


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of an actor-system run."""

    mailbox_capacity: int = 64
    put_timeout: Optional[float] = 5.0
    source_rate: Optional[float] = None
    max_items: Optional[int] = None
    partition_heuristic: str = "greedy"
    seed: int = 1
    #: Default mailbox batching for every edge: tuples per batched
    #: message (1 = unbatched) and the deadline before a partial batch
    #: flushes anyway.  ``Edge.batch`` overrides both per edge.
    batch_size: int = 1
    batch_flush_timeout: float = 0.05
    #: How fused sub-graphs execute: ``"meta"`` runs the Algorithm 4
    #: meta-operator actor, ``"loop"`` forces loop-compiled operators
    #: (see :mod:`repro.codegen.fuseloop`) and raises for ineligible
    #: plans, ``"auto"`` loop-compiles eligible plans and falls back to
    #: the meta-operator otherwise.
    fusion_mode: str = "meta"
    #: Per-vertex supervision policies; ``None`` = Akka-like defaults
    #: (Resume on error, Restart on injected crashes).
    supervisor: Optional[SupervisorStrategy] = None
    #: Seeded fault plan to inject (see :mod:`repro.faults`); ``None``
    #: runs fault-free.
    fault_plan: Optional["FaultPlan"] = None
    #: Stall watchdog sampling interval and no-progress timeout; the
    #: watchdog aborts runs whose actors are all blocked (BAS deadlock)
    #: instead of letting them hang.  ``watchdog=False`` disables it.
    watchdog: bool = True
    watchdog_interval: float = 0.1
    watchdog_stall_timeout: float = 1.0
    #: Aligned-barrier checkpointing (see
    #: :mod:`repro.runtime.checkpoint`).  ``None`` falls back to the
    #: topology's own ``checkpoint`` attribute; both ``None`` disables
    #: checkpointing entirely (the default — zero overhead).
    checkpoint: Optional[CheckpointConfig] = None
    #: Dead-letter payload retention cap (see
    #: :class:`repro.runtime.supervision.DeadLetterSink`).
    dead_letter_retain: int = 100
    #: Build every stateless non-source vertex as an emitter + replicas
    #: + collector ensemble even at replication 1, so the adaptive
    #: controller (:mod:`repro.runtime.adaptive`) can scale replicas
    #: up/down behind the emitter while the system runs.  Off by
    #: default — static runs pay zero extra actors.  Incompatible with
    #: checkpointing (the barrier channel set is fixed at wiring time).
    elastic: bool = False
    #: Escape hatch for the SS3xx deployment-safety gates: ``True``
    #: builds even when the static analyzer proves the triple unsafe
    #: (see :mod:`repro.analysis.deploy`).
    unsafe: bool = False


class RuntimeResult:
    """Measured behaviour of a finished actor-system run."""

    def __init__(self, topology: Topology,
                 measurements: RuntimeMeasurements,
                 supervision: Optional[SupervisionLog] = None,
                 dead_letters: Optional[DeadLetterSink] = None,
                 watchdog: Optional[WatchdogReport] = None,
                 leaked_actors: Sequence[str] = (),
                 failure: Optional[str] = None) -> None:
        self.topology = topology
        self.measurements = measurements
        self.vertices = measurements.vertex_rates()
        #: Supervision event log of the run (empty when nothing failed).
        self.supervision = supervision or SupervisionLog()
        #: Where every dropped tuple went instead of silently vanishing.
        self.dead_letters = dead_letters or DeadLetterSink()
        #: Stall/deadlock/thread-leak verdict, ``None`` on clean runs.
        self.watchdog = watchdog
        #: Actors still alive after ``stop`` joined with its timeout.
        self.leaked_actors = tuple(leaked_actors)
        #: Escalated failure that aborted the run, ``None`` otherwise.
        self.failure = failure

    @property
    def dropped_messages(self) -> int:
        """Tuples lost to mailbox put timeouts over the whole run."""
        return self.measurements.total_dropped()

    @property
    def throughput(self) -> float:
        """Measured topology throughput: source departure rate."""
        return self.vertices[self.topology.source].departure_rate

    def mean_latency(self) -> Optional[float]:
        """Mean end-to-end latency over all sink consumptions (seconds).

        Based on the birth timestamps the source stamps into records;
        ``None`` when no record reached a sink during the window.
        """
        samples = 0
        weighted = 0.0
        for rates in self.measurements.actors.values():
            if rates.mean_latency is not None:
                weighted += rates.mean_latency * rates.latency_samples
                samples += rates.latency_samples
        if samples == 0:
            return None
        return weighted / samples

    def departure_rate(self, vertex: str) -> float:
        return self.vertices[vertex].departure_rate

    def utilization(self, vertex: str) -> float:
        return self.vertices[vertex].utilization

    def throughput_error(self, predicted: SteadyStateResult) -> float:
        if predicted.throughput <= 0.0:
            raise TopologyError("predicted throughput must be positive")
        return abs(self.throughput - predicted.throughput) / predicted.throughput


class ActorSystem:
    """A set of wired actors executing one topology."""

    def __init__(self, topology: Topology, config: RuntimeConfig) -> None:
        self.topology = topology
        self.config = config
        self.stop_event = threading.Event()
        self.actors: List[ActorBase] = []
        self.source_actor: Optional[SourceActor] = None
        self._entries: Dict[str, Target] = {}
        self._mailboxes: List[BoundedMailbox] = []
        self._routers: Dict[str, Router] = {}
        #: The actor whose thread drives each vertex's out-router (the
        #: collector for parallel vertices) — the owner of any batching
        #: buffers on those edges.
        self._router_owners: Dict[str, ActorBase] = {}
        #: How each fused vertex actually executes: ``"loop"`` when its
        #: chain was loop-compiled, ``"meta"`` for the meta-actor.
        self.fusion_executions: Dict[str, str] = {}
        #: Live-scaling wiring per elastic vertex (see :class:`_Ensemble`);
        #: populated only for vertices built as ensembles.
        self._ensembles: Dict[str, _Ensemble] = {}
        #: Serializes live reconfigurations (controller vs. tests).
        self._reconfig_lock = threading.Lock()
        #: Completed live reconfiguration actions (scales + migrations).
        self.reconfigurations = 0
        self._started = False
        self.supervisor = config.supervisor or SupervisorStrategy()
        self.injector: Optional["FaultInjector"] = None
        if config.fault_plan is not None:
            from repro.faults.injector import FaultInjector
            self.injector = FaultInjector(config.fault_plan)
        #: Set when an Escalate directive or the watchdog aborts the
        #: run; ``run`` waits on it instead of sleeping blindly.
        self.failure = threading.Event()
        self.failure_reason: Optional[str] = None
        #: Set when a crashed actor of a checkpointed run asks for a
        #: system-wide rollback (watched by ``run_recoverable``).
        self.recovery = threading.Event()
        self.recovery_vertex: Optional[str] = None
        self.recovery_reason: Optional[str] = None
        #: The checkpoint session of this run, ``None`` when
        #: checkpointing is off.  Shared across the rebuilds of one
        #: ``run_recoverable`` drive.
        self.checkpoint_session: Optional[CheckpointSession] = None
        self.context = ActorContext(
            dead_letters=DeadLetterSink(retain=config.dead_letter_retain),
            escalate=self._fail,
        )
        self.watchdog_report: Optional[WatchdogReport] = None
        self._watchdog: Optional[StallWatchdog] = None

    def _fail(self, vertex: str, reason: str) -> None:
        """Escalation endpoint: abort the run, remember why."""
        if self.failure_reason is None:
            self.failure_reason = f"{vertex}: {reason}"
        self.failure.set()

    def _request_recovery(self, vertex: str, reason: str) -> None:
        """Recovery endpoint: remember the crash, wake the driver."""
        if self.recovery_reason is None:
            self.recovery_vertex = vertex
            self.recovery_reason = reason
        self.recovery.set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        topology: Topology,
        factories: Mapping[str, OperatorFactory],
        config: Optional[RuntimeConfig] = None,
        fusion_plans: Sequence[FusionPlan] = (),
        checkpoint: Optional[CheckpointSession] = None,
    ) -> "ActorSystem":
        """Wire the actors of ``topology``.

        ``factories`` maps operator names to zero-argument callables
        producing fresh :class:`Operator` instances (one per replica).
        For fused vertices, the factories of the *member* operators must
        be provided (not one for the fused name).  Operators without a
        factory fall back to the spec's ``operator_class``.

        ``checkpoint`` is an existing :class:`CheckpointSession` (the
        ``run_recoverable`` driver passes one so the store and fault
        clocks survive rebuilds); without it, a fresh session is created
        when ``config.checkpoint`` or ``topology.checkpoint`` is set.
        """
        config = config or RuntimeConfig()
        system = cls(topology, config)
        session = checkpoint
        if session is None:
            checkpoint_config = config.checkpoint or topology.checkpoint
            if checkpoint_config is not None:
                session = CheckpointSession(checkpoint_config)
        if session is not None:
            system.checkpoint_session = session
            system.context.request_recovery = system._request_recovery
        if config.elastic and session is not None:
            raise TopologyError(
                "elastic mode is incompatible with checkpointing: the "
                "barrier channel set is fixed at wiring time (rule SS310)"
            )
        if not config.unsafe and (session is not None or config.elastic):
            from repro.analysis.deploy import deploy_errors
            rules: List[str] = []
            if session is not None:
                rules += ["SS302", "SS303"]
            if config.elastic:
                rules += ["SS304", "SS305"]
            blocking = deploy_errors(topology, rules)
            if blocking:
                raise TopologyError(
                    "deployment-safety gate refused the build "
                    "(unsafe=True overrides): "
                    + "; ".join(d.render() for d in blocking[:3])
                )
        plans = {plan.fused_name: plan for plan in fusion_plans}

        def make_operator(name: str) -> Operator:
            factory = factories.get(name)
            if factory is not None:
                return factory()
            spec = topology.operator(name) if name in topology else None
            if spec is not None and spec.operator_class:
                return instantiate_operator(spec.operator_class,
                                            spec.operator_args)
            raise TopologyError(
                f"no factory nor operator_class for operator {name!r}"
            )

        # Pass 1: create the entry point (mailbox) of every vertex.
        deferred: List[Callable[[], None]] = []
        for spec in topology.operators:
            name = spec.name
            router = Router(name, seed=config.seed + _stable_hash(name))
            system._routers[name] = router
            if name == topology.source:
                deferred.append(system._defer_source(name, make_operator, router))
                continue
            if name in plans:
                deferred.append(
                    system._defer_meta(plans[name], factories, make_operator,
                                       router)
                )
                continue
            if spec.replication > 1 or (config.elastic
                                        and spec.state is StateKind.STATELESS):
                deferred.append(
                    system._defer_parallel(spec.name, make_operator, router)
                )
            else:
                deferred.append(
                    system._defer_single(spec.name, make_operator, router)
                )
        for build_actor in deferred:
            build_actor()

        # Pass 2: connect the routers now that every entry exists.
        # Batched edges get a per-sender BatchingTarget wrapping the
        # shared entry mailbox, so batch buffers stay thread-confined.
        for spec in topology.operators:
            router = system._routers[spec.name]
            owner = system._router_owners.get(spec.name)
            for edge in topology.out_edges(spec.name):
                entry = system._entries[edge.target]
                router.add(edge.probability,
                           system._edge_target(edge, entry, owner))
            if owner is not None:
                owner.batch_targets = [
                    target for target in router.targets
                    if isinstance(target, BatchingTarget)
                ]
        if session is not None:
            system._wire_checkpoint(session)
        return system

    def _wire_checkpoint(self, session: CheckpointSession) -> None:
        """Attach every actor to the checkpoint session (after pass 2).

        Computes each actor's barrier *channels* (origins expected to
        deliver barriers to its mailbox) and barrier *targets* (where
        aligned barriers are forwarded), declares the expected actor set
        to the store, and applies the session's pending epoch restore.
        """
        preds = {name: tuple(self.topology.predecessors(name))
                 for name in self.topology.names}
        for actor in self.actors:
            vertex = actor.vertex
            if isinstance(actor, SourceActor):
                actor.configure_checkpoint(session, (), actor.router.targets)
            elif isinstance(actor, EmitterActor):
                # The emitter broadcasts aligned barriers to every
                # replica under its own origin so the collector can
                # re-align them per replica channel.
                actor.origin_name = actor.actor_name
                actor.configure_checkpoint(session, preds[vertex],
                                           actor.replicas)
            elif isinstance(actor, CollectorActor):
                replica_names = tuple(
                    peer.actor_name for peer in self.actors
                    if peer.vertex == vertex
                    and isinstance(peer, OperatorActor))
                actor.configure_checkpoint(session, replica_names,
                                           actor.router.targets)
            elif isinstance(actor, OperatorActor) \
                    and actor.actor_name != vertex:
                # A replica: barriers come from the emitter only, and
                # go out under the replica's own origin.
                actor.origin_name = actor.actor_name
                actor.configure_checkpoint(session,
                                           (f"{vertex}.emitter",),
                                           actor.router.targets)
            else:
                # Single, loop-compiled or meta entry actor.
                actor.configure_checkpoint(session, preds[vertex],
                                           actor.router.targets)
        session.store.set_expected(
            actor.actor_name for actor in self.actors)
        restored = session.restore
        if restored is None:
            return
        for actor in self.actors:
            blob = restored.states.get(actor.actor_name)
            if blob is None:
                continue
            try:
                actor.checkpoint_restore(blob)
            except Exception as error:
                wrapped = CheckpointRestoreError(
                    f"restoring epoch {restored.epoch} on actor "
                    f"{actor.actor_name!r} failed: "
                    f"{type(error).__name__}: {error}")
                wrapped.vertex = actor.vertex
                raise wrapped from error

    def _edge_target(self, edge: Edge, entry: Target,
                     owner: Optional[ActorBase]) -> Target:
        """The delivery endpoint of one edge: batched or direct."""
        if edge.batch is not None:
            size = edge.batch.size
            flush_timeout = edge.batch.flush_timeout
        else:
            size = self.config.batch_size
            flush_timeout = self.config.batch_flush_timeout
        if size <= 1:
            return entry
        on_drop = None
        if owner is not None:
            counters = owner.counters
            vertex = owner.vertex
            dead_letters = self.context.dead_letters

            def on_drop(items: Sequence[object]) -> None:
                # Runs on the owning actor's thread (flush is only ever
                # called there), so single-writer counters hold.  The
                # tuples were pre-counted as emitted when buffered;
                # reclassify them as dropped now that the batched put
                # timed out.
                counters.emitted -= len(items)
                counters.dropped += len(items)
                for item in items:
                    dead_letters.record(vertex, unwrap(item),
                                        "mailbox-timeout")

        return BatchingTarget(entry.name, entry.mailbox, size,
                              flush_timeout, on_drop=on_drop)

    def _new_mailbox(self, vertex: Optional[str] = None) -> BoundedMailbox:
        mailbox = BoundedMailbox(self.config.mailbox_capacity,
                                 put_timeout=self.config.put_timeout)
        if vertex is not None and self.injector is not None:
            windows = self.injector.schedule(vertex).drop_windows
            if windows:
                mailbox.set_drop_windows(windows)
        self._mailboxes.append(mailbox)
        return mailbox

    def _vertex_factory(self, name: str, make_operator,
                        clock_key: Optional[str] = None) -> OperatorFactory:
        """Zero-argument factory for one actor's operator instances.

        When the fault plan touches this vertex, every instance the
        factory produces is wrapped in a :class:`FaultyOperator` sharing
        one :class:`ItemClock` — so a supervision restart resumes the
        vertex's logical fault schedule instead of replaying it.
        Call once per actor (each replica needs its own clock, keyed by
        ``clock_key``).

        In a checkpointed run the clock lives in the session registry,
        surviving teardown/rebuild recovery cycles: replayed items get
        *new* clock indices, so a crash fault that already fired never
        fires again (otherwise recovery could never progress).
        """
        if self.injector is None:
            return lambda: make_operator(name)
        schedule = self.injector.schedule(name)
        if schedule.empty:
            return lambda: make_operator(name)
        from repro.faults.injector import FaultyOperator, ItemClock
        session = self.checkpoint_session
        key = clock_key or name
        if session is not None and key in session.clocks:
            clock = session.clocks[key]
        else:
            clock = ItemClock()
            if session is not None:
                session.clocks[key] = clock
        return lambda: FaultyOperator(make_operator(name), schedule, clock)

    def _defer_source(self, name: str, make_operator, router: Router):
        def build() -> None:
            factory = self._vertex_factory(name, make_operator)
            actor = SourceActor(
                name=name,
                operator=factory(),
                router=router,
                stop_event=self.stop_event,
                rate=self.config.source_rate,
                max_items=self.config.max_items,
                context=self.context,
            )
            self.actors.append(actor)
            self.source_actor = actor
            self._router_owners[name] = actor
        return build

    def _defer_single(self, name: str, make_operator, router: Router):
        def build() -> None:
            mailbox = self._new_mailbox(vertex=name)
            factory = self._vertex_factory(name, make_operator)
            actor = OperatorActor(
                name=name,
                vertex=name,
                operator=factory(),
                router=router,
                mailbox=mailbox,
                stop_event=self.stop_event,
                operator_factory=factory,
                policy=self.supervisor.policy_for(name),
                context=self.context,
            )
            self.actors.append(actor)
            self._entries[name] = Target(name, mailbox)
            self._router_owners[name] = actor
        return build

    def _defer_parallel(self, name: str, make_operator, router: Router):
        def build() -> None:
            spec = self.topology.operator(name)
            collector_mailbox = self._new_mailbox()
            collector = CollectorActor(
                name=f"{name}.collector",
                vertex=name,
                router=router,
                mailbox=collector_mailbox,
                stop_event=self.stop_event,
                context=self.context,
            )
            collector_target = Target(name, collector_mailbox)

            def spawn(index: int) -> Tuple[Target, OperatorActor]:
                """One replica exactly as pass 1 builds it (unstarted)."""
                replica_mailbox = self._new_mailbox()
                replica_router = Router(f"{name}#{index}")
                replica_router.add(1.0, collector_target)
                factory = self._vertex_factory(name, make_operator,
                                               clock_key=f"{name}#{index}")
                actor = OperatorActor(
                    name=f"{name}#{index}",
                    vertex=name,
                    operator=factory(),
                    router=replica_router,
                    mailbox=replica_mailbox,
                    stop_event=self.stop_event,
                    keep_wrapped=True,
                    operator_factory=factory,
                    policy=self.supervisor.policy_for(name),
                    context=self.context,
                )
                return Target(name, replica_mailbox), actor

            members: List[Tuple[Target, OperatorActor]] = []
            replica_targets: List[Target] = []
            operators: List[Operator] = []
            for index in range(spec.replication):
                target, actor = spawn(index)
                self.actors.append(actor)
                members.append((target, actor))
                replica_targets.append(target)
                operators.append(actor.operator)

            key_of = None
            key_assignment = None
            if spec.state is StateKind.PARTITIONED:
                key_of = operators[0].key_of
                assert spec.keys is not None  # enforced by OperatorSpec
                _, _, plan = key_partitioning(
                    spec.keys, spec.replication,
                    heuristic=self.config.partition_heuristic,
                )
                key_assignment = plan.assignment

            emitter_mailbox = self._new_mailbox(vertex=name)
            emitter = EmitterActor(
                name=f"{name}.emitter",
                vertex=name,
                replicas=replica_targets,
                mailbox=emitter_mailbox,
                stop_event=self.stop_event,
                key_of=key_of,
                key_assignment=key_assignment,
                context=self.context,
            )
            self.actors.append(emitter)
            self.actors.append(collector)
            self._entries[name] = Target(name, emitter_mailbox)
            self._router_owners[name] = collector
            if key_of is None:
                # Stateless (round-robin) vertices can live-scale; a
                # fixed key-to-replica assignment cannot be resized
                # without re-partitioning state, so partitioned
                # ensembles stay static.
                self._ensembles[name] = _Ensemble(
                    vertex=name,
                    emitter=emitter,
                    spawn=spawn,
                    next_index=spec.replication,
                    members=members,
                )
        return build

    def _defer_meta(self, plan: FusionPlan, factories, make_operator,
                    router: Router):
        def build() -> None:
            mode = self.config.fusion_mode
            if mode not in ("meta", "loop", "auto"):
                raise TopologyError(
                    f"fusion_mode must be 'meta', 'loop' or 'auto', "
                    f"got {mode!r}"
                )
            mailbox = self._new_mailbox(vertex=plan.fused_name)
            member_factories = {
                name: self._vertex_factory(name, make_operator)
                for name in plan.members
            }
            members = {name: factory()
                       for name, factory in member_factories.items()}
            if mode != "meta" and self._try_loop(plan, members, mailbox,
                                                 router, mode):
                return
            self.fusion_executions[plan.fused_name] = "meta"
            actor = MetaOperatorActor(
                name=plan.fused_name,
                plan=plan,
                members=members,
                router=router,
                mailbox=mailbox,
                stop_event=self.stop_event,
                seed=self.config.seed,
                member_factories=member_factories,
                strategy=self.supervisor,
                context=self.context,
            )
            self.actors.append(actor)
            self._entries[plan.fused_name] = Target(plan.fused_name, mailbox)
            self._router_owners[plan.fused_name] = actor
        return build

    def _try_loop(self, plan: FusionPlan, members, mailbox: BoundedMailbox,
                  router: Router, mode: str) -> bool:
        """Build a loop-compiled actor for a fused vertex if admissible.

        Returns ``True`` when the loop actor was built.  ``"loop"`` mode
        raises for inadmissible plans; ``"auto"`` silently falls back to
        the meta-operator.  Fault injection on any member forces the
        meta-actor regardless (the injected wrapper is deliberately
        impure, and member-level supervision needs the meta path).
        """
        from repro.codegen.fuseloop import (
            LoopOperator,
            loop_eligibility_from_operators,
        )
        faulted = []
        if self.injector is not None:
            faulted = [name for name in plan.members
                       if not self.injector.schedule(name).empty]
        verdict = loop_eligibility_from_operators(plan, members)
        if faulted or not verdict.eligible:
            if mode == "loop":
                reasons = list(verdict.reasons)
                if faulted:
                    reasons.append(
                        f"fault plan injects into members {sorted(faulted)}")
                raise TopologyError(
                    f"fusion plan {plan.fused_name!r} cannot be "
                    f"loop-compiled: {'; '.join(reasons)}"
                )
            return False
        operator = LoopOperator(plan, members, chain=verdict.chain)
        actor = OperatorActor(
            name=plan.fused_name,
            vertex=plan.fused_name,
            operator=operator,
            router=router,
            mailbox=mailbox,
            stop_event=self.stop_event,
            policy=self.supervisor.policy_for(plan.fused_name),
            context=self.context,
        )
        self.actors.append(actor)
        self._entries[plan.fused_name] = Target(plan.fused_name, mailbox)
        self._router_owners[plan.fused_name] = actor
        self.fusion_executions[plan.fused_name] = "loop"
        return True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("actor system already started")
        self._started = True
        for actor in self.actors:
            actor.start()
        if self.config.watchdog:
            self._watchdog = StallWatchdog(
                progress=self._progress,
                blocked=self._blocked_actors,
                on_stall=self._on_stall,
                interval=self.config.watchdog_interval,
                stall_timeout=self.config.watchdog_stall_timeout,
            )
            self._watchdog.start()

    def _progress(self) -> int:
        """Monotone system-wide progress counter sampled by the watchdog."""
        return sum(actor.counters.processed + actor.counters.emitted
                   + actor.counters.dropped + actor.counters.failed
                   for actor in self.actors)

    def _blocked_actors(self) -> List[BlockedActor]:
        return [
            BlockedActor(actor=actor.actor_name, vertex=actor.vertex,
                         blocked_on=blocked_on)
            for actor in self.actors
            if (blocked_on := actor.blocked_on) is not None
        ]

    def _on_stall(self, report: WatchdogReport) -> None:
        self.watchdog_report = report
        self._fail("<watchdog>", report.verdict)

    def stop(self, join_timeout: float = 5.0) -> List[str]:
        """Stop and join every actor; returns the leaked actor names.

        Closing the mailboxes wakes senders blocked on full mailboxes
        (they observe :class:`MailboxClosed` and exit), so a deadlocked
        system unwinds here.  Actors still alive after the join timeout
        are reported instead of silently leaking their threads.
        """
        self.stop_event.set()
        # Graceful pass: retire actors in topological order so a final
        # partial batch force-flushed by an exiting actor lands in a
        # still-open downstream mailbox instead of being lost — batched
        # shutdown stays as lossless as unbatched shutdown (receivers
        # drain closed mailboxes before exiting).  A healthy actor exits
        # within milliseconds of its mailbox closing; the first one that
        # doesn't (a deadlocked or wedged system) aborts the pass and
        # falls through to the global close below, which wakes every
        # blocked sender at once.
        grace = min(1.0, join_timeout)
        by_vertex: Dict[str, List[ActorBase]] = {}
        for actor in self.actors:
            by_vertex.setdefault(actor.vertex, []).append(actor)
        graceful = True
        for name in self.topology.names:
            if not graceful:
                break
            for actor in by_vertex.get(name, ()):
                actor.mailbox.close()
                if actor.is_alive():
                    actor.join(timeout=grace)
                if actor.is_alive():
                    graceful = False
                    break
        for mailbox in self._mailboxes:
            mailbox.close()
        for actor in self.actors:
            if actor.is_alive():
                actor.join(timeout=join_timeout)
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog.join(timeout=join_timeout)
            self._watchdog = None
        leaked = [actor.actor_name for actor in self.actors
                  if actor.is_alive()]
        return leaked

    def snapshot(self) -> Dict[str, CounterSnapshot]:
        return {actor.actor_name: actor.counters.snapshot()
                for actor in self.actors}

    # ------------------------------------------------------------------
    # live reconfiguration (see repro.runtime.adaptive)
    # ------------------------------------------------------------------
    def scalable_vertices(self) -> List[str]:
        """Vertices whose replica count can change while running."""
        return sorted(self._ensembles)

    def replication_of(self, vertex: str) -> int:
        """The vertex's current live replica count."""
        ensemble = self._ensembles.get(vertex)
        if ensemble is not None:
            return len(ensemble.members)
        return 1

    def set_source_rate(self, rate: Optional[float]) -> None:
        """Change the source's arrival rate mid-run (``None`` = max)."""
        if self.source_actor is None:
            raise TopologyError("system has no source actor")
        self.source_actor.rate = rate

    def scale_vertex(self, vertex: str, replicas: int,
                     timeout: float = 10.0) -> int:
        """Resize a vertex's replica set without stopping the world.

        Scale-up spawns fresh replicas behind the existing emitter;
        scale-down routes a :class:`ScaleDirective` through the
        emitter's mailbox so the swap happens on the emitter thread and
        retire notices drain outgoing replicas in FIFO order — zero
        tuples are lost either way.  Returns the signed replica delta.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        ensemble = self._ensembles.get(vertex)
        if ensemble is None:
            raise TopologyError(
                f"vertex {vertex!r} is not live-scalable (build the "
                f"system with RuntimeConfig(elastic=True), and only "
                f"stateless vertices scale)"
            )
        with self._reconfig_lock:
            current = len(ensemble.members)
            delta = replicas - current
            if delta == 0:
                return 0
            retired: List[Tuple[Target, OperatorActor]] = []
            if delta > 0:
                for _ in range(delta):
                    target, actor = ensemble.spawn(ensemble.next_index)
                    ensemble.next_index += 1
                    self.actors.append(actor)
                    if self._started:
                        actor.start()
                    ensemble.members.append((target, actor))
            else:
                retired = ensemble.members[replicas:]
                ensemble.members = ensemble.members[:replicas]
            targets = [target for target, _ in ensemble.members]
            if not self._started:
                # No threads yet: swap directly, nothing to drain.
                ensemble.emitter.replicas = targets
            else:
                directive = ScaleDirective(
                    targets, [target for target, _ in retired])
                ensemble.emitter.mailbox.put(
                    (directive, "<scale>"), control=True)
                if not directive.done.wait(timeout):
                    raise TimeoutError(
                        f"emitter of {vertex!r} did not apply the scale "
                        f"directive within {timeout:g}s")
                deadline = time.perf_counter() + timeout
                for target, actor in retired:
                    actor.join(timeout=max(
                        0.0, deadline - time.perf_counter()))
                    if actor.is_alive():
                        raise TimeoutError(
                            f"retired replica {actor.actor_name!r} did "
                            f"not drain within {timeout:g}s")
                    target.mailbox.close()
            self.reconfigurations += 1
            return delta

    def migrate_vertex(self, vertex: str, member: Optional[str] = None,
                       timeout: float = 10.0) -> MigrationTicket:
        """Drain-and-migrate a vertex's operator state in-band.

        Enqueues a :class:`MigrationTicket` behind all in-flight data;
        the owning actor(s) perform "checkpoint → rebuild → restore →
        resume" on their own threads (emitters fan the ticket out to
        every replica; meta-actors migrate ``member`` or all members).
        Returns the completed ticket — inspect ``.ok`` / ``.errors``.
        """
        entry = self._entries.get(vertex)
        if entry is None:
            raise TopologyError(
                f"vertex {vertex!r} has no entry mailbox (sources "
                f"cannot migrate in-band)")
        ticket = MigrationTicket(vertex, member=member)
        with self._reconfig_lock:
            entry.mailbox.put((ticket, "<migrate>"), control=True)
            if not ticket.wait(timeout):
                raise TimeoutError(
                    f"migration of {vertex!r} did not complete within "
                    f"{timeout:g}s")
            if ticket.ok:
                self.reconfigurations += 1
        return ticket

    def run(self, duration: float, warmup: Optional[float] = None
            ) -> RuntimeResult:
        """Run for ``duration`` seconds, measuring after ``warmup``.

        ``warmup`` defaults to a quarter of the duration.  The run ends
        early when a failure escalates to the system level or the stall
        watchdog fires; the result then carries the failure reason and
        the watchdog verdict next to whatever rates were measured.
        """
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        if warmup is None:
            warmup = duration * 0.25
        if not 0.0 <= warmup < duration:
            raise ValueError(f"warmup must be in [0, duration), got {warmup}")
        self.start()
        try:
            aborted = self.failure.wait(warmup)
            before = self.snapshot()
            started = time.perf_counter()
            if not aborted:
                self.failure.wait(duration - warmup)
            after = self.snapshot()
            window = max(time.perf_counter() - started, 1e-9)
        finally:
            leaked = self.stop()
        rates: Dict[str, ActorRates] = {}
        for actor in self.actors:
            # Replicas spawned mid-window by a live reconfiguration have
            # no "before" snapshot: they start from zero counters.
            rates[actor.actor_name] = rates_between(
                actor.actor_name, actor.vertex,
                before.get(actor.actor_name, CounterSnapshot()),
                after[actor.actor_name], window,
            )
        measurements = RuntimeMeasurements(duration=window, actors=rates,
                                           totals=self.snapshot())
        return RuntimeResult(
            self.topology,
            measurements,
            supervision=self.context.supervision,
            dead_letters=self.context.dead_letters,
            watchdog=attach_leak(self.watchdog_report, leaked),
            leaked_actors=leaked,
            failure=self.failure_reason,
        )


def run_topology(
    topology: Topology,
    factories: Mapping[str, OperatorFactory],
    duration: float = 2.0,
    warmup: Optional[float] = None,
    config: Optional[RuntimeConfig] = None,
    fusion_plans: Sequence[FusionPlan] = (),
) -> RuntimeResult:
    """Build, run and measure a topology in one call."""
    system = ActorSystem.build(topology, factories, config=config,
                               fusion_plans=fusion_plans)
    return system.run(duration, warmup=warmup)


def _stable_hash(text: str) -> int:
    """Deterministic small hash (process-independent, unlike ``hash``)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % 1_000_003
    return value
