"""Actors executing abstract operators (the Akka layer, Section 4.2).

Actors are OS threads with a bounded blocking mailbox each.  Following
the paper's abstraction layer (Figure 6), actors are *executors* of
operators: a standard operator is executed by one dedicated actor;
replicated operators get one actor per replica plus an *emitter* actor
scheduling the input items and a *collector* actor gathering the
results; fused sub-graphs are executed by a single actor running the
meta-operator loop of Algorithm 4.

Messages are ``(payload, origin)`` pairs; the origin operator name is
stamped into record payloads so multi-input operators (joins) can tell
their streams apart.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.partitioning import stable_key_hash
from repro.operators.base import (
    Operator,
    WrappedItem,
    destination_of,
    unwrap,
)
from repro.runtime.checkpoint import (
    Barrier,
    BarrierAligner,
    CheckpointSession,
    MigrationTicket,
)
from repro.runtime.mailbox import Batch, BoundedMailbox, MailboxClosed
from repro.runtime.metrics import ActorCounters
from repro.runtime.supervision import (
    ActorContext,
    ActorStopped,
    Directive,
    RestartTracker,
    SupervisionEvent,
    SupervisionPolicy,
)

#: How often idle actors poll for shutdown while their mailbox is empty.
_IDLE_POLL_SECONDS = 0.05


class Target:
    """A delivery endpoint: the entry mailbox of a vertex."""

    def __init__(self, name: str, mailbox: BoundedMailbox) -> None:
        self.name = name
        self.mailbox = mailbox

    def deliver(self, payload: Any, origin: str) -> bool:
        """Enqueue ``(payload, origin)``; blocks while full (BAS)."""
        return self.mailbox.put((payload, origin))


class BatchingTarget(Target):
    """A delivery endpoint accumulating tuples into batched messages.

    One instance belongs to exactly one sending actor (the buffer is
    thread-confined): tuples accumulate until ``size`` is reached, then
    the whole batch travels as one mailbox message, amortizing the
    per-message hop cost.  The owning actor flushes partial batches
    older than ``flush_timeout`` from its idle loop and force-flushes on
    exhaustion/shutdown, so batching never strands tuples (BAS semantics
    are preserved: the batched put still blocks on a full mailbox).

    ``on_drop`` is invoked with the batch's tuples when the batched put
    times out, so the sender can account every lost tuple (dead letters
    and counters) instead of one lost message.
    """

    def __init__(self, name: str, mailbox: BoundedMailbox, size: int,
                 flush_timeout: float,
                 on_drop: Optional[Callable[[Tuple[Any, ...]], None]] = None,
                 ) -> None:
        super().__init__(name, mailbox)
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size}")
        if flush_timeout <= 0.0:
            raise ValueError(
                f"flush timeout must be positive, got {flush_timeout}")
        self.size = size
        self.flush_timeout = flush_timeout
        self.on_drop = on_drop
        self._buffer: List[Any] = []
        self._origin: Optional[str] = None
        self._first_at: Optional[float] = None

    @property
    def pending(self) -> int:
        """Tuples currently buffered (visible to tests and flush logic)."""
        return len(self._buffer)

    def deliver(self, payload: Any, origin: str) -> bool:
        """Buffer ``payload``; deliver the batch when it reaches ``size``.

        Always returns ``True`` from the caller's perspective: delivery
        failures of the batched message are reported asynchronously via
        ``on_drop`` (and the mailbox's weighted ``dropped`` counter), so
        per-tuple send accounting stays exact.
        """
        self._buffer.append(payload)
        self._origin = origin
        if self._first_at is None:
            self._first_at = time.monotonic()
        if len(self._buffer) >= self.size:
            self.flush()
        return True

    def overdue(self) -> bool:
        """Whether the oldest buffered tuple exceeded the flush timeout."""
        return (self._first_at is not None
                and time.monotonic() - self._first_at >= self.flush_timeout)

    def seconds_until_overdue(self) -> Optional[float]:
        """Time left before the buffered batch must flush; ``None`` if empty."""
        if self._first_at is None:
            return None
        return max(0.0, self._first_at + self.flush_timeout - time.monotonic())

    def flush(self) -> bool:
        """Deliver the buffered tuples as one batch message now.

        Returns ``False`` when the batched put timed out (the tuples
        were dropped and reported through ``on_drop``); an empty buffer
        flushes trivially to ``True``.
        """
        if not self._buffer:
            return True
        items = tuple(self._buffer)
        origin = self._origin or ""
        self._buffer.clear()
        self._first_at = None
        ok = self.mailbox.put((Batch(items), origin), weight=len(items))
        if not ok and self.on_drop is not None:
            self.on_drop(items)
        return ok


class Router:
    """Routes operator outputs to downstream targets.

    Plain outputs follow the topology's edge probabilities; outputs
    wrapped with a pinned destination go straight to that vertex.
    """

    def __init__(self, origin: str, seed: int = 1) -> None:
        self.origin = origin
        self._entries: List[Tuple[float, Target]] = []
        self._cumulative: List[float] = []
        self._by_name: Dict[str, Target] = {}
        self._rng = random.Random(seed)
        #: Items routed per destination name — the profiler reads these
        #: to estimate the edge probabilities of the topology.
        self.counts: Dict[str, int] = {}

    def add(self, probability: float, target: Target) -> None:
        self._entries.append((probability, target))
        total = (self._cumulative[-1] if self._cumulative else 0.0) + probability
        self._cumulative.append(total)
        self._by_name[target.name] = target
        self.counts.setdefault(target.name, 0)

    @property
    def targets(self) -> List[Target]:
        return [target for _, target in self._entries]

    def resolve(self, output: Any) -> Optional[Target]:
        """The target of one output, or ``None`` for sinks' outputs."""
        target = self._resolve(output)
        if target is not None:
            self.counts[target.name] = self.counts.get(target.name, 0) + 1
        return target

    def _resolve(self, output: Any) -> Optional[Target]:
        pinned = destination_of(output)
        if pinned is not None:
            try:
                return self._by_name[pinned]
            except KeyError:
                raise KeyError(
                    f"operator {self.origin!r} pinned unknown destination "
                    f"{pinned!r}"
                ) from None
        if not self._entries:
            return None
        if len(self._entries) == 1:
            return self._entries[0][1]
        draw = self._rng.random() * self._cumulative[-1]
        for index, bound in enumerate(self._cumulative):
            if draw < bound:
                return self._entries[index][1]
        return self._entries[-1][1]

    def state(self) -> Dict[str, Any]:
        """Snapshot of the routing state (RNG position, edge counts)."""
        return {"rng": self._rng.getstate(), "counts": dict(self.counts)}

    def restore(self, blob: Mapping[str, Any]) -> None:
        """Restore a previously snapshotted routing state in place."""
        self._rng.setstate(blob["rng"])
        self.counts = dict(blob["counts"])


class ScaleDirective:
    """Control envelope asking an emitter to swap its replica list.

    Routed through the emitter's own mailbox so the swap happens on the
    emitter thread, strictly ordered against its round-robin picks: no
    pick can race the resize, and retire notices enqueued to outgoing
    replicas land *behind* every item the emitter already sent them.
    """

    __slots__ = ("replicas", "retired", "done")

    def __init__(self, replicas: Sequence["Target"],
                 retired: Sequence["Target"]) -> None:
        self.replicas = list(replicas)
        self.retired = list(retired)
        self.done = threading.Event()


class RetireNotice:
    """Control envelope telling a drained replica to exit its loop.

    Travels in FIFO order behind all data the emitter routed to the
    replica, so by the time it is dequeued the replica has processed
    everything it will ever receive — retirement loses zero tuples.
    """

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = threading.Event()


class ActorBase(threading.Thread):
    """Common machinery: mailbox loop, counters, graceful shutdown."""

    def __init__(self, name: str, vertex: str, mailbox: BoundedMailbox,
                 stop_event: threading.Event,
                 context: Optional[ActorContext] = None) -> None:
        super().__init__(name=f"actor-{name}", daemon=True)
        self.actor_name = name
        self.vertex = vertex
        self.mailbox = mailbox
        self.stop_event = stop_event
        self.context = context or ActorContext()
        self.counters = ActorCounters()
        #: Vertex this actor is currently blocked on (full downstream
        #: mailbox), read by the stall watchdog.  Written only by this
        #: actor's thread.
        self.blocked_on: Optional[str] = None
        #: Downstream :class:`BatchingTarget` endpoints owned by this
        #: actor; populated by the system during wiring.  The run loop
        #: flushes overdue partial batches from its idle poll and
        #: force-flushes on shutdown.
        self.batch_targets: List[BatchingTarget] = []
        #: Origin stamped on outgoing mailbox messages.  Equal to the
        #: vertex except for replicas and emitters, whose per-actor
        #: origins let the checkpoint layer align barriers per channel.
        self.origin_name = vertex
        #: Checkpoint wiring (see :mod:`repro.runtime.checkpoint`);
        #: ``None`` while checkpointing is off — the hot path then pays
        #: one ``is None`` test per message.
        self.checkpoint_session: Optional[CheckpointSession] = None
        self._aligner: Optional[BarrierAligner] = None
        self._barrier_targets: List[Target] = []
        #: Epoch snapshots this actor recorded (tests and reports).
        self.snapshots_taken = 0
        #: Drain-and-migrate cycles this actor completed (tests/metrics).
        self.migrations = 0

    def run(self) -> None:  # pragma: no cover - thread body, exercised E2E
        try:
            self.on_start()
            while True:
                try:
                    message = self.mailbox.get(timeout=_IDLE_POLL_SECONDS)
                except TimeoutError:
                    if self.stop_event.is_set() or self.mailbox.diverted:
                        break
                    if self.batch_targets:
                        self._flush_batches()
                    continue
                except MailboxClosed:
                    break
                try:
                    self._dispatch(message)
                    if self.batch_targets:
                        self._flush_batches()
                except ActorStopped:
                    break
        except MailboxClosed:
            pass
        finally:
            self.blocked_on = None
            if self.batch_targets:
                self._flush_batches(force=True)
            self.on_stop()

    def _dispatch(self, message: Tuple[Any, str]) -> None:
        """Route one mailbox message: defer, align or handle it."""
        payload, origin = message
        aligner = self._aligner
        if aligner is not None and aligner.deferring(origin):
            # A barrier already arrived on this channel for the epoch
            # being aligned: everything behind it belongs to the next
            # epoch and must wait (including the channel's next barrier).
            aligner.defer(message)
            return
        if isinstance(payload, Barrier):
            self._on_barrier(payload, origin)
            return
        if isinstance(payload, MigrationTicket):
            self._on_migrate(payload)
            return
        if isinstance(payload, ScaleDirective):
            self._on_scale(payload)
            return
        if isinstance(payload, RetireNotice):
            self._on_retire(payload)
            return
        if isinstance(payload, Batch):
            for item in payload.items:
                self.handle((item, origin))
        else:
            self.handle(message)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def configure_checkpoint(self, session: CheckpointSession,
                             channels: Sequence[str],
                             targets: Sequence[Target]) -> None:
        """Wire this actor into a checkpoint session (before ``start``).

        ``channels`` are the origins expected to deliver barriers to the
        actor's mailbox; ``targets`` the downstream endpoints barriers
        are forwarded to once aligned.
        """
        self.checkpoint_session = session
        self._aligner = BarrierAligner(channels)
        self._barrier_targets = list(targets)

    def checkpoint_state(self) -> Dict[str, Any]:
        """The actor's epoch snapshot blob (subclasses add their state)."""
        return {}

    def checkpoint_restore(self, blob: Mapping[str, Any]) -> None:
        """Restore a snapshot blob in place (called before ``start``)."""

    def _on_barrier(self, barrier: Barrier, origin: str) -> None:
        aligner = self._aligner
        if aligner is None or not aligner.observe(barrier.epoch, origin):
            return
        session = self.checkpoint_session
        if session is not None:
            session.record(barrier.epoch, self.actor_name,
                           self.checkpoint_state())
            self.snapshots_taken += 1
        self._forward_barrier(barrier)
        # Replay the messages deferred during alignment; they may
        # include the next epoch's first barriers.
        for message in aligner.drain():
            self._dispatch(message)

    def _on_migrate(self, ticket: MigrationTicket) -> None:
        """Perform an in-band drain-and-migrate; acknowledge the ticket.

        The base class has no migratable state: acknowledge and move on
        (collectors/sinks reached by a fanned-out ticket behave this
        way).  Subclasses holding operator state override this.
        """
        ticket.acknowledge()

    def _on_scale(self, directive: ScaleDirective) -> None:
        """Only emitters resize; elsewhere the directive is a no-op."""
        directive.done.set()

    def _on_retire(self, notice: RetireNotice) -> None:
        """Exit the loop: everything before the notice was processed."""
        notice.done.set()
        raise ActorStopped

    def _forward_barrier(self, barrier: Barrier) -> None:
        """Send ``barrier`` to every downstream endpoint, in-band.

        Outgoing batch buffers flush first so the barrier never
        overtakes buffered tuples; the put is a control put (never shed
        by fault windows, not counted as a data arrival).
        """
        for target in self._barrier_targets:
            if isinstance(target, BatchingTarget):
                target.flush()
            target.mailbox.put((barrier, self.origin_name), control=True)

    def _flush_batches(self, force: bool = False) -> None:
        """Flush overdue (or, with ``force``, all) outgoing batches."""
        for target in self.batch_targets:
            if force or target.overdue():
                try:
                    target.flush()
                except MailboxClosed:
                    pass  # receiver already shut down; tuples lost at exit

    def on_start(self) -> None:
        """Subclass hook run in the actor thread before the loop."""

    def on_stop(self) -> None:
        """Subclass hook run in the actor thread after the loop."""

    def handle(self, message: Tuple[Any, str]) -> None:
        raise NotImplementedError

    def _send(self, target: Target, payload: Any) -> None:
        """Deliver downstream, accounting blocked time (backpressure)."""
        started = time.perf_counter()
        self.blocked_on = target.name
        try:
            ok = target.deliver(payload, self.origin_name)
        finally:
            self.blocked_on = None
        elapsed = time.perf_counter() - started
        # Any non-negligible delivery time means the sender was blocked
        # on a full mailbox; the threshold filters out lock overhead.
        if elapsed > 1e-4:
            self.counters.blocked_time += elapsed
        if ok:
            self.counters.emitted += 1
        else:
            # The destination mailbox stayed full past the put timeout:
            # the tuple is gone.  Count it and route it to dead letters
            # so the loss is visible instead of silent.
            self.counters.dropped += 1
            self.context.dead_letters.record(
                self.vertex, unwrap(payload), "mailbox-timeout")

    def _emit_outputs(self, outputs: Sequence[Any], router: Router,
                      keep_wrapped: bool = False) -> None:
        """Route outputs downstream.

        ``keep_wrapped`` preserves :class:`WrappedItem` envelopes, used
        by replicas so pinned destinations survive the trip through the
        collector actor.

        Copy-on-route: when one invocation emits the *same* dict object
        more than once (fan-out via flatmaps or gain > 1), every
        delivery after the first gets a shallow copy.  Without this,
        two downstream actors would mutate one shared payload (origin
        stamping, attribute writes) concurrently.
        """
        seen_ids: Optional[set] = None
        for output in outputs:
            target = router.resolve(output)
            if target is None:
                self.counters.emitted += 1  # result leaves the topology
                continue
            item = output if keep_wrapped else unwrap(output)
            payload = unwrap(item)
            if isinstance(payload, dict):
                if seen_ids is None:
                    seen_ids = set()
                if id(payload) in seen_ids:
                    payload = type(payload)(payload)
                    if isinstance(item, WrappedItem):
                        item = WrappedItem(payload, item.destination)
                    else:
                        item = payload
                else:
                    seen_ids.add(id(payload))
            self._send(target, item)


class OperatorActor(ActorBase):
    """A dedicated actor executing one (replica of an) operator.

    When the operator function raises, the actor consults its
    :class:`SupervisionPolicy` (an Akka supervisor's decider): Resume
    drops the poisonous item, Restart re-instantiates the operator via
    ``operator_factory`` after a backoff (counting restarts inside the
    policy window; exceeding the budget degrades to Stop), Stop diverts
    the mailbox to dead letters and leaves the loop, Escalate
    propagates to the system level.  Every decision is logged and every
    dropped tuple lands in the dead-letter sink.
    """

    def __init__(self, name: str, vertex: str, operator: Operator,
                 router: Router, mailbox: BoundedMailbox,
                 stop_event: threading.Event,
                 keep_wrapped: bool = False,
                 operator_factory: Optional[Callable[[], Operator]] = None,
                 policy: Optional[SupervisionPolicy] = None,
                 context: Optional[ActorContext] = None) -> None:
        super().__init__(name, vertex, mailbox, stop_event, context=context)
        self.operator = operator
        self.router = router
        self.keep_wrapped = keep_wrapped
        self.operator_factory = operator_factory
        self.policy = policy or SupervisionPolicy()
        self._restarts = RestartTracker(self.policy)

    def on_start(self) -> None:
        self.operator.on_start()

    def on_stop(self) -> None:
        self.operator.on_stop()

    def checkpoint_state(self) -> Dict[str, Any]:
        return {"operator": self.operator.snapshot_state(),
                "router": self.router.state()}

    def checkpoint_restore(self, blob: Mapping[str, Any]) -> None:
        self.operator.restore_state(blob["operator"])
        self.router.restore(blob["router"])

    def _on_migrate(self, ticket: MigrationTicket) -> None:
        """Checkpoint the operator, rebuild it fresh, restore, resume.

        Runs in the actor's own thread after the mailbox FIFO delivered
        every item that preceded the ticket — the drain is implicit, so
        no tuple is lost or reordered.  Without a factory there is
        nothing to rebuild from and the migration is refused.
        """
        if self.operator_factory is None:
            ticket.acknowledge(
                f"{self.vertex}: no operator factory, cannot migrate")
            return
        try:
            blob = self.operator.snapshot_state()
            replacement = self.operator_factory()
            replacement.on_start()
            replacement.restore_state(blob)
        except Exception as error:
            ticket.acknowledge(
                f"{self.vertex}: {type(error).__name__}: {error}")
            return
        old = self.operator
        self.operator = replacement
        try:
            old.on_stop()
        except Exception:
            pass  # the old instance is being discarded; best-effort
        self.migrations += 1
        ticket.acknowledge()

    def _log_event(self, directive: Directive, error: BaseException) -> None:
        self.context.supervision.record(SupervisionEvent(
            time=self.context.now(),
            vertex=self.vertex,
            actor=self.actor_name,
            directive=directive.value,
            reason=f"{type(error).__name__}: {error}",
            item_index=self.counters.received - 1,
            restarts=self._restarts.total,
        ))

    def _restart_operator(self) -> bool:
        """Re-instantiate the operator; ``False`` when that too failed."""
        try:
            self.operator.on_stop()
        except Exception:
            pass  # the old instance is broken; teardown is best-effort
        backoff = self.policy.backoff(self._restarts.in_window)
        if backoff > 0.0:
            self.stop_event.wait(backoff)
        try:
            self.operator = self.operator_factory()
            self.operator.on_start()
        except Exception:
            return False
        self.counters.restarts += 1
        return True

    def _on_failure(self, payload: Any, error: BaseException) -> None:
        self.counters.failed += 1
        directive = self.policy.decide(error)
        if (directive is Directive.RESTART
                and self.context.request_recovery is not None):
            # Checkpointed run: instead of a cold per-actor restart,
            # roll the whole system back to the last complete epoch.
            # The crashed item is NOT dead-lettered — the replay from
            # the source offset re-delivers it (effectively once).
            self._log_event(directive, error)
            self.context.request_recovery(
                self.vertex, f"{type(error).__name__}: {error}")
            self._stop_self()
            return
        if directive is Directive.RESTART:
            if self.operator_factory is None:
                # Nothing to rebuild from: degrade to Resume.
                directive = Directive.RESUME
            elif self._restarts.record(self.context.now()):
                directive = self.policy.exhausted_directive()
        self._log_event(directive, error)
        if directive is not Directive.ESCALATE:
            self.context.dead_letters.record(
                self.vertex, payload, f"supervision-{directive.value}")
        if directive is Directive.RESUME:
            return
        if directive is Directive.RESTART:
            if not self._restart_operator():
                self._log_event(Directive.STOP,
                                RuntimeError("restart failed"))
                self._stop_self()
            return
        if directive is Directive.STOP:
            self._stop_self()
            return
        self.context.escalate(
            self.vertex, f"{type(error).__name__}: {error}")
        raise ActorStopped

    def _stop_self(self) -> None:
        if self.policy.divert_on_stop:
            vertex = self.vertex
            sink = self.context.dead_letters

            def _divert(message: Tuple[Any, str]) -> None:
                payload = message[0]
                # Unpack batch envelopes so dead letters stay per-tuple.
                items = payload.items if isinstance(payload, Batch) else (payload,)
                for item in items:
                    sink.record(vertex, item, "stopped-actor")

            self.mailbox.divert(_divert)
        raise ActorStopped

    def handle(self, message: Tuple[Any, str]) -> None:
        payload, origin = message
        self.counters.received += 1
        if isinstance(payload, dict):
            payload["origin"] = origin
        started = time.perf_counter()
        try:
            outputs = self.operator.operator_function(payload)
        except Exception as error:
            self.counters.busy_time += time.perf_counter() - started
            self._on_failure(payload, error)
            return
        finished = time.perf_counter()
        self.counters.busy_time += finished - started
        self.counters.processed += 1
        # Reservoir of raw service-time samples for percentile profiling
        # (bounded so long runs don't grow memory without limit).
        if len(self.counters.service_samples) < 10_000:
            self.counters.service_samples.append(finished - started)
        if not self.router.targets and isinstance(payload, dict):
            born = payload.get("_born")
            if born is not None:
                # This actor is a sink: the record's journey ends here.
                self.counters.latency_sum += finished - born
                self.counters.latency_count += 1
        self._emit_outputs(outputs, self.router, keep_wrapped=self.keep_wrapped)


class SourceActor(ActorBase):
    """The source: generates items at a paced rate, no input mailbox.

    ``rate`` items per second are generated (``None`` = as fast as
    possible); backpressure from downstream naturally slows the source
    because :meth:`Target.deliver` blocks on full mailboxes.
    """

    def __init__(self, name: str, operator: Operator, router: Router,
                 stop_event: threading.Event, rate: Optional[float] = None,
                 max_items: Optional[int] = None,
                 context: Optional[ActorContext] = None) -> None:
        # The source never receives messages; a 1-slot mailbox satisfies
        # the ActorBase interface and stays unused.
        super().__init__(name, name, BoundedMailbox(1), stop_event,
                         context=context)
        self.operator = operator
        self.router = router
        self.rate = rate
        self.max_items = max_items
        #: First sequence number to emit; a checkpoint restore rewinds
        #: this to the recorded epoch offset (source replay).
        self._start_sequence = 0

    def checkpoint_restore(self, blob: Mapping[str, Any]) -> None:
        self.operator.restore_state(blob["operator"])
        self.router.restore(blob["router"])
        self._start_sequence = int(blob["sequence"])

    def _emit_barrier(self, sequence: int) -> None:
        """Snapshot the source and inject the barrier for ``sequence``.

        The snapshot is taken *before* generating the item at
        ``sequence``, so restoring it and replaying from that offset
        regenerates the exact post-barrier stream (the RNG state is part
        of the operator snapshot).
        """
        session = self.checkpoint_session
        assert session is not None
        epoch = sequence // session.config.interval_items
        session.record(epoch, self.actor_name, {
            "operator": self.operator.snapshot_state(),
            "router": self.router.state(),
            "sequence": sequence,
        }, offset=sequence)
        self.snapshots_taken += 1
        self._forward_barrier(Barrier(epoch))

    def run(self) -> None:  # pragma: no cover - thread body, exercised E2E
        next_time = time.perf_counter()
        sequence = self._start_sequence
        try:
            self.operator.on_start()
            while not self.stop_event.is_set():
                # Re-read the rate every iteration: the adaptive layer
                # changes it mid-run (phase-shifted arrival workloads).
                rate = self.rate
                interval = None if rate is None else 1.0 / rate
                if self.max_items is not None and sequence >= self.max_items:
                    break
                if (self.checkpoint_session is not None
                        and sequence > self._start_sequence
                        and sequence % self.checkpoint_session.config
                        .interval_items == 0):
                    self._emit_barrier(sequence)
                if interval is not None:
                    now = time.perf_counter()
                    delay = next_time - now
                    if delay > 0:
                        self._paced_sleep(delay)
                started = time.perf_counter()
                try:
                    outputs = self.operator.operator_function(sequence)
                except Exception as error:
                    # Sources are always resumed: a failed generation
                    # skips one sequence number and the pacing resumes.
                    self.counters.failed += 1
                    self.counters.busy_time += time.perf_counter() - started
                    self.context.supervision.record(SupervisionEvent(
                        time=self.context.now(),
                        vertex=self.vertex,
                        actor=self.actor_name,
                        directive=Directive.RESUME.value,
                        reason=f"{type(error).__name__}: {error}",
                        item_index=sequence,
                    ))
                    sequence += 1
                    if interval is not None:
                        next_time = max(next_time + interval,
                                        time.perf_counter())
                    continue
                born = time.perf_counter()
                self.counters.busy_time += born - started
                self.counters.processed += 1
                sequence += 1
                # Stamp the emission time so sinks can measure the
                # end-to-end latency of each record.
                for output in outputs:
                    payload = unwrap(output)
                    if isinstance(payload, dict):
                        payload["_born"] = born
                self._emit_outputs(outputs, self.router)
                if self.batch_targets:
                    self._flush_batches()
                if interval is not None:
                    # No catch-up bursts after backpressure stalls: the
                    # source resumes at its nominal pace.
                    next_time = max(next_time + interval, time.perf_counter())
        except MailboxClosed:
            pass
        finally:
            # Final partial-batch flush: an exhausted source (max_items)
            # must not strand its last, incomplete batch.
            if self.batch_targets:
                self._flush_batches(force=True)
            self.operator.on_stop()

    def _paced_sleep(self, delay: float) -> None:
        """Sleep ``delay`` seconds, waking early to flush overdue batches.

        A slow source pacing below the batch fill rate would otherwise
        hold partial batches past their flush deadline for a full
        inter-arrival interval (the idle-source flush-timeout case).
        """
        deadline = time.perf_counter() + delay
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0.0:
                return
            if not self.batch_targets:
                time.sleep(remaining)
                return
            self._flush_batches()
            waits = [wait for wait in
                     (target.seconds_until_overdue()
                      for target in self.batch_targets)
                     if wait is not None]
            cap = min(remaining, max(min(waits), 1e-3)) if waits else remaining
            time.sleep(cap)


class EmitterActor(ActorBase):
    """Scheduler of input items to the replicas of a parallel operator.

    Stateless operators use circular (round-robin) distribution;
    partitioned-stateful operators hash the partitioning key through the
    key-to-replica assignment computed by the partitioning heuristic.
    """

    def __init__(self, name: str, vertex: str, replicas: Sequence[Target],
                 mailbox: BoundedMailbox, stop_event: threading.Event,
                 key_of: Optional[Callable[[Any], Optional[str]]] = None,
                 key_assignment: Optional[Mapping[str, int]] = None,
                 context: Optional[ActorContext] = None) -> None:
        super().__init__(name, vertex, mailbox, stop_event, context=context)
        if not replicas:
            raise ValueError("emitter needs at least one replica")
        self.replicas = list(replicas)
        self.key_of = key_of
        self.key_assignment = dict(key_assignment or {})
        self._next = 0

    def checkpoint_state(self) -> Dict[str, Any]:
        return {"next": self._next, "keys": dict(self.key_assignment)}

    def checkpoint_restore(self, blob: Mapping[str, Any]) -> None:
        self._next = int(blob["next"])
        self.key_assignment = dict(blob["keys"])

    def _pick(self, payload: Any) -> Target:
        # Snapshot the replica list once: the adaptive controller swaps
        # in a whole new list object when scaling (atomic under the
        # GIL), so indexing a local never races a concurrent resize.
        replicas = self.replicas
        if self.key_of is not None:
            key = self.key_of(payload)
            if key is not None:
                index = self.key_assignment.get(key)
                if index is None:
                    # Builtin hash() is PYTHONHASHSEED-salted: two shard
                    # processes would route the same unseen key to
                    # different replicas.  crc32 is stable everywhere.
                    index = stable_key_hash(key) % len(replicas)
                return replicas[index % len(replicas)]
        index = self._next % len(replicas)
        self._next = (index + 1) % len(replicas)
        return replicas[index]

    def _on_migrate(self, ticket: MigrationTicket) -> None:
        """Fan the ticket out to every replica, in-band behind the data.

        The ticket completes only when all replicas acknowledged; the
        emitter itself holds no operator state, so it contributes no
        part of its own.
        """
        replicas = self.replicas
        ticket.split(len(replicas))
        for target in replicas:
            target.mailbox.put((ticket, self.origin_name), control=True)

    def _on_scale(self, directive: ScaleDirective) -> None:
        """Swap the replica list on this thread, then retire the rest.

        Running here (not on the controller thread) strictly orders the
        swap against round-robin picks, and the retire notices enqueue
        behind every item already routed to the outgoing replicas.
        """
        self.replicas = directive.replicas
        self._next = 0
        for target in directive.retired:
            target.mailbox.put((RetireNotice(), self.origin_name),
                               control=True)
        directive.done.set()

    def handle(self, message: Tuple[Any, str]) -> None:
        payload, origin = message
        self.counters.received += 1
        started = time.perf_counter()
        target = self._pick(payload)
        self.counters.busy_time += time.perf_counter() - started
        self.counters.processed += 1
        delivered = time.perf_counter()
        self.blocked_on = target.name
        try:
            ok = target.mailbox.put((payload, origin))
        finally:
            self.blocked_on = None
        elapsed = time.perf_counter() - delivered
        if elapsed > 1e-4:
            self.counters.blocked_time += elapsed
        if ok:
            self.counters.emitted += 1
        else:
            self.counters.dropped += 1
            self.context.dead_letters.record(
                self.vertex, unwrap(payload), "mailbox-timeout")


class CollectorActor(ActorBase):
    """Collector of the results of a parallel operator's replicas.

    Forwards every collected item downstream using the vertex's original
    routing table, so the replication stays invisible to the rest of the
    topology.
    """

    def __init__(self, name: str, vertex: str, router: Router,
                 mailbox: BoundedMailbox, stop_event: threading.Event,
                 context: Optional[ActorContext] = None) -> None:
        super().__init__(name, vertex, mailbox, stop_event, context=context)
        self.router = router

    def checkpoint_state(self) -> Dict[str, Any]:
        return {"router": self.router.state()}

    def checkpoint_restore(self, blob: Mapping[str, Any]) -> None:
        self.router.restore(blob["router"])

    def handle(self, message: Tuple[Any, str]) -> None:
        payload, origin = message
        self.counters.received += 1
        self.counters.processed += 1
        target = self.router.resolve(payload)
        if target is None:
            self.counters.emitted += 1
            return
        self._send(target, unwrap(payload))
