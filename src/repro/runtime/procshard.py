"""Multi-process sharded execution backend — escaping the GIL.

The threaded :class:`~repro.runtime.system.ActorSystem` caps every
CPU-bound topology at one core: Python threads share one interpreter
lock, so the fission plans the solver prices never buy real parallelism
on real hardware.  This module executes the same topology across
*shard* worker processes:

* each shard is one forked OS process owning a partition of the
  topology's operator replicas (chosen by
  :func:`repro.codegen.deployment.shard_placement` from the solver's
  utilization numbers — hot operators get their own shard, cheap glue
  stays co-located with the driver on shard 0);
* inside a shard the existing actor classes run unchanged (threads,
  bounded blocking mailboxes, BAS semantics);
* every physical edge crossing a shard boundary becomes an SPSC channel
  over a ``multiprocessing`` pipe.  The sending actor's side is a
  :class:`ChannelSender` — a :class:`~repro.runtime.actors.
  BatchingTarget` whose "mailbox" writes to the pipe — so PR 6's
  ``Batch`` envelopes amortize pickling exactly like they amortize
  mailbox hops; the receiving side is a reader thread feeding the local
  entry mailbox (OS pipe buffer + blocking mailbox put = cross-process
  backpressure);
* key-hash routing reuses :func:`repro.core.partitioning.
  key_partitioning`: the driver computes one partition plan per
  partitioned vertex and every worker routes with the same
  process-stable assignment (crc32 fallback, never the salted builtin
  ``hash``).

Shutdown is *graceful and topological*, so sharded runs are lossless:
when a physical node's senders have all retired, a per-shard reaper
closes its mailbox, joins the actor (which drains and force-flushes its
outgoing batch buffers), then emits an EOS marker on each outgoing
channel — the retire wave crosses shard boundaries through the
channels themselves, no global coordinator polling required.  A worker
that crashes mid-run surfaces as EOF on its channels (readers treat it
as EOS and flag the channel), and the driver terminates and reaps every
straggler so no zombie processes or orphaned pipes outlive a run.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.graph import StateKind, Topology, TopologyError
from repro.core.partitioning import key_partitioning
from repro.operators.base import Operator, instantiate_operator
from repro.runtime.actors import (
    ActorBase,
    BatchingTarget,
    CollectorActor,
    EmitterActor,
    OperatorActor,
    Router,
    SourceActor,
    Target,
)
from repro.runtime.mailbox import Batch, BoundedMailbox, MailboxClosed
from repro.runtime.metrics import (
    ActorCounters,
    ActorRates,
    CounterSnapshot,
    RuntimeMeasurements,
    rates_between,
)
from repro.runtime.supervision import ActorContext, SupervisorStrategy
from repro.runtime.system import _stable_hash

OperatorFactory = Callable[[], Operator]


@dataclass(frozen=True)
class ProcShardConfig:
    """Configuration of a multi-process sharded run.

    ``batch_size``/``batch_flush_timeout`` batch *intra-shard* edges
    exactly like :class:`~repro.runtime.system.RuntimeConfig`;
    ``channel_batch_size``/``channel_flush_timeout`` size the pickled
    envelopes on cross-shard channels (the dominant cost is per-message
    pickling and pipe syscalls, so channel envelopes default much
    larger).
    """

    shards: int = 2
    mailbox_capacity: int = 64
    put_timeout: float = 5.0
    source_rate: Optional[float] = None
    max_items: Optional[int] = None
    partition_heuristic: str = "greedy"
    seed: int = 1
    batch_size: int = 1
    batch_flush_timeout: float = 0.05
    channel_batch_size: int = 32
    channel_flush_timeout: float = 0.02
    #: Credit window of a cross-shard channel, in tuples.  The OS pipe
    #: buffer alone (~64KB) would give a crossing edge effectively
    #: unbounded slack — the source would run unthrottled for seconds
    #: before backpressure reached it, breaking the BAS semantics every
    #: measurement assumes.  The receiver acknowledges tuples as they
    #: enter its mailbox; a sender with ``channel_capacity`` unacked
    #: tuples blocks, making a channel behave like a bounded mailbox.
    channel_capacity: int = 64
    utilization_threshold: Optional[float] = None
    #: Seconds a retiring actor may take to drain once its senders are
    #: done (per actor, enforced by the shard reaper).
    join_timeout: float = 10.0
    #: Driver-side deadline for the whole shutdown cascade.
    drain_timeout: float = 60.0
    #: Escape hatch for the SS3xx deployment-safety gates: ``True``
    #: builds even when the static analyzer proves an operator unsafe
    #: to cross a process boundary (see :mod:`repro.analysis.deploy`).
    unsafe: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise TopologyError(f"shards must be >= 1, got {self.shards}")
        if self.channel_capacity < 1:
            raise TopologyError(
                f"channel capacity must be >= 1, "
                f"got {self.channel_capacity}")
        if self.channel_batch_size < 1:
            raise TopologyError(
                f"channel batch size must be >= 1, "
                f"got {self.channel_batch_size}")
        if self.channel_flush_timeout <= 0.0:
            raise TopologyError(
                f"channel flush timeout must be positive, "
                f"got {self.channel_flush_timeout}")


# ----------------------------------------------------------------------
# physical plan: topology vertices -> per-shard actor nodes


@dataclass(frozen=True)
class _Node:
    """One actor of the physical plan (its id is the actor name)."""

    node_id: str
    kind: str  # "source" | "single" | "emitter" | "replica" | "collector"
    vertex: str
    shard: int
    replica: int = 0


@dataclass(frozen=True)
class _Link:
    """One physical edge between two nodes (SPSC: one sending actor)."""

    sender: str
    receiver: str
    kind: str  # "route" | "scatter" | "gather"
    probability: float = 1.0
    channel: Optional[int] = None
    batch_size: int = 1
    flush_timeout: float = 0.05


class _PhysicalPlan:
    """The logical->physical mapping shared by driver and workers."""

    def __init__(self) -> None:
        self.nodes: Dict[str, _Node] = {}
        self.order: List[str] = []
        self.links: List[_Link] = []
        self.links_from: Dict[str, List[_Link]] = {}
        self.links_to: Dict[str, List[_Link]] = {}
        #: node -> retire dependencies: ("node", id) or ("chan", cid)
        self.deps: Dict[str, List[Tuple[str, Any]]] = {}
        self.channel_count = 0
        #: vertex -> key->replica assignment (partitioned vertices only)
        self.key_assignments: Dict[str, Mapping[str, int]] = {}

    def add_node(self, node: _Node) -> None:
        self.nodes[node.node_id] = node
        self.order.append(node.node_id)
        self.links_from[node.node_id] = []
        self.links_to[node.node_id] = []
        self.deps[node.node_id] = []

    def add_link(self, sender: str, receiver: str, kind: str,
                 probability: float = 1.0, batch_size: int = 1,
                 flush_timeout: float = 0.05) -> None:
        channel: Optional[int] = None
        if self.nodes[sender].shard != self.nodes[receiver].shard:
            channel = self.channel_count
            self.channel_count += 1
        link = _Link(sender=sender, receiver=receiver, kind=kind,
                     probability=probability, channel=channel,
                     batch_size=batch_size, flush_timeout=flush_timeout)
        self.links.append(link)
        self.links_from[sender].append(link)
        self.links_to[receiver].append(link)
        self.deps[receiver].append(
            ("chan", channel) if channel is not None else ("node", sender))

    def shard_nodes(self, shard: int) -> List[str]:
        return [nid for nid in self.order if self.nodes[nid].shard == shard]


def _build_plan(topology: Topology, placement: Mapping[str, Tuple[int, ...]],
                config: ProcShardConfig) -> _PhysicalPlan:
    plan = _PhysicalPlan()
    entry: Dict[str, str] = {}
    exits: Dict[str, str] = {}
    for spec in topology.operators:
        name = spec.name
        shards = tuple(placement[name])
        home = shards[0]
        if name == topology.source:
            plan.add_node(_Node(name, "source", name, home))
            entry[name] = exits[name] = name
        elif spec.replication > 1:
            emitter = f"{name}.emitter"
            collector = f"{name}.collector"
            plan.add_node(_Node(emitter, "emitter", name, home))
            for index, shard in enumerate(shards):
                plan.add_node(_Node(f"{name}#{index}", "replica", name,
                                    shard, replica=index))
            plan.add_node(_Node(collector, "collector", name, home))
            for index in range(spec.replication):
                plan.add_link(emitter, f"{name}#{index}", "scatter")
                plan.add_link(f"{name}#{index}", collector, "gather")
            entry[name] = emitter
            exits[name] = collector
            if spec.state is StateKind.PARTITIONED:
                assert spec.keys is not None  # enforced by OperatorSpec
                _, _, partition = key_partitioning(
                    spec.keys, spec.replication,
                    heuristic=config.partition_heuristic)
                plan.key_assignments[name] = dict(partition.assignment)
        else:
            plan.add_node(_Node(name, "single", name, home))
            entry[name] = exits[name] = name
    for spec in topology.operators:
        for edge in topology.out_edges(spec.name):
            if edge.batch is not None:
                size, flush = edge.batch.size, edge.batch.flush_timeout
            else:
                size, flush = config.batch_size, config.batch_flush_timeout
            plan.add_link(exits[edge.source], entry[edge.target], "route",
                          probability=edge.probability, batch_size=size,
                          flush_timeout=flush)
    return plan


# ----------------------------------------------------------------------
# cross-shard channels


_EOS = "eos"
_MSG = "m"


class _ChannelConn:
    """Mailbox-shaped, credit-gated sender end of one channel.

    Only the owning actor's thread writes (SPSC), so no lock is needed.
    The receiver acknowledges tuple weights as they enter its mailbox;
    :meth:`put` blocks once ``capacity`` tuples are unacknowledged, so
    a cross-shard channel backpressures exactly like a bounded local
    mailbox instead of hiding seconds of flow in the OS pipe buffer.
    A broken pipe (crashed receiver shard) surfaces as
    :class:`MailboxClosed`, the same signal a closed local mailbox
    gives, and the sending actor unwinds identically.
    """

    def __init__(self, conn: Any, ack_conn: Any, capacity: int) -> None:
        self._conn = conn
        self._ack = ack_conn
        self._capacity = capacity
        self._in_flight = 0
        self.closed = False

    def _drain_acks(self, block: bool) -> None:
        try:
            while self._ack.poll(None if block else 0):
                self._in_flight -= int(self._ack.recv())
                block = False
        except (EOFError, OSError) as error:
            self.closed = True
            raise MailboxClosed(f"channel peer gone: {error}") from error

    def put(self, message: Any, timeout: float = -1.0, weight: int = 1,
            control: bool = False) -> bool:
        if self.closed:
            raise MailboxClosed("channel closed")
        self._drain_acks(block=False)
        # An envelope heavier than the whole window may go alone on an
        # empty channel; otherwise wait for credit.
        while self._in_flight > 0 and (
                self._in_flight + weight > self._capacity):
            self._drain_acks(block=True)
        try:
            self._conn.send((_MSG, message))
        except (BrokenPipeError, OSError) as error:
            self.closed = True
            raise MailboxClosed(f"channel peer gone: {error}") from error
        self._in_flight += weight
        return True

    def close(self) -> None:
        self.closed = True
        try:
            self._ack.close()
        except OSError:
            pass


class ChannelSender(BatchingTarget):
    """Batched sender side of a cross-shard channel.

    Reuses the whole :class:`BatchingTarget` machinery — accumulation,
    flush deadlines, force-flush on actor exit — with the pipe standing
    in for the receiving mailbox, so one pickled ``Batch`` envelope
    amortizes serialization over ``channel_batch_size`` tuples.

    It is also *mailbox-shaped* (:meth:`put`): an
    :class:`~repro.runtime.actors.EmitterActor` addresses its replicas
    through ``target.mailbox.put``, so a remote replica target is
    ``Target(vertex, ChannelSender(...))`` and scatter traffic batches
    exactly like routed traffic.
    """

    def put(self, message: Any, timeout: float = -1.0, weight: int = 1,
            control: bool = False) -> bool:
        payload, origin = message
        if control or isinstance(payload, Batch):
            # Keep ordering: anything buffered goes first.  Credit is
            # accounted in tuples, so a pre-assembled Batch weighs its
            # item count regardless of what the caller passed.
            self.flush()
            if isinstance(payload, Batch):
                weight = len(payload)
            return self.mailbox.put(message, weight=weight, control=control)
        return self.deliver(payload, origin)


def _read_channel(conn: Any, ack_conn: Any, mailbox: BoundedMailbox,
                  eos: threading.Event, state: Dict[str, Any]) -> None:
    """Reader-thread body: pump one inbound channel into a mailbox.

    Each delivered weight is acknowledged back to the sender *after*
    the (blocking, bounded) mailbox put — that ack path is what carries
    backpressure upstream across the process boundary.  EOF without an
    explicit EOS marker means the sending shard died; the channel still
    terminates (the cascade keeps going) but the run is flagged as
    crashed.
    """
    while True:
        try:
            kind, body = conn.recv()
        except (EOFError, OSError):
            state["crashed"] = True
            break
        if kind == _EOS:
            break
        payload = body[0]
        weight = len(payload) if isinstance(payload, Batch) else 1
        try:
            mailbox.put(body, weight=weight)
        except MailboxClosed:
            break
        try:
            ack_conn.send(weight)
        except (BrokenPipeError, OSError):
            pass  # sender already retired; keep draining toward EOS
    for pipe in (conn, ack_conn):
        try:
            pipe.close()
        except OSError:
            pass
    eos.set()


# ----------------------------------------------------------------------
# shard worker


class _ShardWorker:
    """Everything one worker process runs: actors, readers, reaper."""

    def __init__(self, shard: int, plan: _PhysicalPlan, topology: Topology,
                 make_operator: Callable[[str], Operator],
                 config: ProcShardConfig,
                 channel_conns: Mapping[int, Tuple[Any, ...]]) -> None:
        self.shard = shard
        self.plan = plan
        self.topology = topology
        self.config = config
        self.context = ActorContext()
        self.supervisor = SupervisorStrategy()
        #: Stops only the source (graceful drain follows the topology).
        self.source_stop = threading.Event()
        #: Force-stop for every other actor (abnormal shutdown only).
        self.abort = threading.Event()
        self.error: Optional[str] = None
        self.crashed_channels: List[int] = []
        self.leaked_actors: List[str] = []

        self.local_nodes = plan.shard_nodes(shard)
        local = set(self.local_nodes)
        self.mailboxes: Dict[str, BoundedMailbox] = {}
        self.actors: Dict[str, ActorBase] = {}
        self.exited: Dict[str, threading.Event] = {
            nid: threading.Event() for nid in self.local_nodes}
        self.chan_eos: Dict[int, threading.Event] = {}
        self.chan_state: Dict[int, Dict[str, Any]] = {}
        self.senders: Dict[int, ChannelSender] = {}
        self.send_conns: Dict[int, Any] = {}
        self.readers: List[threading.Thread] = []
        self.reaper = threading.Thread(
            target=self._reap, name=f"shard{shard}-reaper", daemon=True)

        for nid in self.local_nodes:
            if plan.nodes[nid].kind != "source":
                self.mailboxes[nid] = BoundedMailbox(
                    config.mailbox_capacity, put_timeout=config.put_timeout)

        # Sender sides of outgoing channels, reader threads for inbound.
        for link in plan.links:
            if link.channel is None:
                continue
            data_recv, data_send, ack_recv, ack_send = (
                channel_conns[link.channel])
            if link.sender in local:
                vertex = plan.nodes[link.receiver].vertex
                self.send_conns[link.channel] = data_send
                self.senders[link.channel] = ChannelSender(
                    vertex,
                    _ChannelConn(data_send, ack_recv,
                                 config.channel_capacity),
                    config.channel_batch_size,
                    config.channel_flush_timeout)
            if link.receiver in local:
                event = threading.Event()
                state: Dict[str, Any] = {"crashed": False}
                self.chan_eos[link.channel] = event
                self.chan_state[link.channel] = state
                self.readers.append(threading.Thread(
                    target=_read_channel,
                    args=(data_recv, ack_send,
                          self.mailboxes[link.receiver], event, state),
                    name=f"shard{shard}-chan{link.channel}", daemon=True))

        for nid in self.local_nodes:
            self._build_actor(nid, make_operator)

    # -- wiring --------------------------------------------------------

    def _target_for(self, link: _Link) -> Target:
        """The delivery endpoint of one outgoing physical link."""
        if link.channel is not None:
            return self.senders[link.channel]
        vertex = self.plan.nodes[link.receiver].vertex
        mailbox = self.mailboxes[link.receiver]
        if link.kind == "route" and link.batch_size > 1:
            return BatchingTarget(vertex, mailbox, link.batch_size,
                                  link.flush_timeout)
        return Target(vertex, mailbox)

    def _router_for(self, nid: str) -> Tuple[Router, List[BatchingTarget]]:
        node = self.plan.nodes[nid]
        router = Router(node.vertex,
                        seed=self.config.seed + _stable_hash(node.vertex))
        batched: List[BatchingTarget] = []
        for link in self.plan.links_from[nid]:
            target = self._target_for(link)
            router.add(link.probability, target)
            if isinstance(target, BatchingTarget):
                batched.append(target)
        return router, batched

    def _build_actor(self, nid: str,
                     make_operator: Callable[[str], Operator]) -> None:
        node = self.plan.nodes[nid]
        vertex = node.vertex
        if node.kind == "source":
            router, batched = self._router_for(nid)
            actor: ActorBase = SourceActor(
                name=vertex,
                operator=make_operator(vertex),
                router=router,
                stop_event=self.source_stop,
                rate=self.config.source_rate,
                max_items=self.config.max_items,
                context=self.context,
            )
        elif node.kind == "single":
            router, batched = self._router_for(nid)
            factory = (lambda v=vertex: make_operator(v))
            actor = OperatorActor(
                name=vertex,
                vertex=vertex,
                operator=factory(),
                router=router,
                mailbox=self.mailboxes[nid],
                stop_event=self.abort,
                operator_factory=factory,
                policy=self.supervisor.policy_for(vertex),
                context=self.context,
            )
        elif node.kind == "replica":
            router = Router(nid)
            batched = []
            gather = self.plan.links_from[nid][0]
            target = self._target_for(gather)
            router.add(1.0, target)
            if isinstance(target, BatchingTarget):
                batched.append(target)
            factory = (lambda v=vertex: make_operator(v))
            actor = OperatorActor(
                name=nid,
                vertex=vertex,
                operator=factory(),
                router=router,
                mailbox=self.mailboxes[nid],
                stop_event=self.abort,
                keep_wrapped=True,
                operator_factory=factory,
                policy=self.supervisor.policy_for(vertex),
                context=self.context,
            )
        elif node.kind == "emitter":
            batched = []
            replicas: List[Target] = []
            for link in self.plan.links_from[nid]:
                if link.channel is not None:
                    sender = self.senders[link.channel]
                    replicas.append(Target(vertex, sender))
                    batched.append(sender)
                else:
                    replicas.append(
                        Target(vertex, self.mailboxes[link.receiver]))
            key_of = None
            key_assignment = self.plan.key_assignments.get(vertex)
            if key_assignment is not None:
                key_of = make_operator(vertex).key_of
            actor = EmitterActor(
                name=nid,
                vertex=vertex,
                replicas=replicas,
                mailbox=self.mailboxes[nid],
                stop_event=self.abort,
                key_of=key_of,
                key_assignment=key_assignment,
                context=self.context,
            )
        elif node.kind == "collector":
            router, batched = self._router_for(nid)
            actor = CollectorActor(
                name=nid,
                vertex=vertex,
                router=router,
                mailbox=self.mailboxes[nid],
                stop_event=self.abort,
                context=self.context,
            )
        else:  # pragma: no cover - plan builder emits only known kinds
            raise TopologyError(f"unknown physical node kind {node.kind!r}")
        actor.batch_targets = batched
        self.actors[nid] = actor

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        for reader in self.readers:
            reader.start()
        for nid in self.local_nodes:
            self.actors[nid].start()
        self.reaper.start()

    def _wait_dep(self, dep: Tuple[str, Any]) -> bool:
        kind, key = dep
        event = (self.exited[key] if kind == "node"
                 else self.chan_eos[key])
        while not event.wait(0.2):
            if self.abort.is_set():
                return False
        if kind == "chan" and self.chan_state[key]["crashed"]:
            self.crashed_channels.append(key)
        return True

    def _reap(self) -> None:
        """Retire local actors in topological order once senders finish.

        The global topological order of the physical plan guarantees a
        node's mailbox closes only after every sender (local actor or
        remote shard, via channel EOS) has flushed and exited — the
        batched, sharded shutdown stays lossless.
        """
        for nid in self.local_nodes:
            node = self.plan.nodes[nid]
            deps = self.plan.deps[nid]
            if not all(self._wait_dep(dep) for dep in deps):
                self.error = f"shard {self.shard}: aborted retiring {nid}"
                return
            actor = self.actors[nid]
            if node.kind != "source":
                self.mailboxes[nid].close()
                actor.join(timeout=self.config.join_timeout)
            else:
                # The source retires on its own: max_items exhaustion or
                # the driver's stop command.
                while actor.is_alive():
                    actor.join(timeout=0.2)
                    if self.abort.is_set():
                        break
            if actor.is_alive():
                self.leaked_actors.append(actor.actor_name)
                self.error = (f"shard {self.shard}: actor "
                              f"{actor.actor_name!r} wedged during drain")
                return
            self.exited[nid].set()
            for link in self.plan.links_from[nid]:
                if link.channel is None:
                    continue
                try:
                    self.send_conns[link.channel].send((_EOS, nid))
                except (BrokenPipeError, OSError):
                    pass

    def snapshot(self) -> Dict[str, CounterSnapshot]:
        return {nid: actor.counters.snapshot()
                for nid, actor in self.actors.items()}

    def _collect_sinks(self) -> Dict[str, Dict[str, Any]]:
        sinks: Dict[str, Dict[str, Any]] = {}
        for nid, actor in self.actors.items():
            operators: List[Tuple[str, Any]] = []
            operator = getattr(actor, "operator", None)
            if operator is not None:
                operators.append((actor.vertex, operator))
            members = getattr(actor, "members", None)
            if isinstance(members, Mapping):
                operators.extend(members.items())
            for vertex, op in operators:
                items = getattr(op, "items", None)
                count = getattr(op, "count", None)
                if count is None:
                    continue
                entry = sinks.setdefault(vertex, {"items": [], "count": 0})
                entry["count"] += int(count)
                if isinstance(items, list):
                    entry["items"].extend(items)
        return sinks

    def report(self) -> Dict[str, Any]:
        mailbox_dropped = sum(m.dropped for m in self.mailboxes.values())
        mailbox_shed = sum(m.shed for m in self.mailboxes.values())
        return {
            "shard": self.shard,
            "snapshots": self.snapshot(),
            "vertices": {nid: self.plan.nodes[nid].vertex
                         for nid in self.actors},
            "sinks": self._collect_sinks(),
            "mailbox_dropped": mailbox_dropped,
            "mailbox_shed": mailbox_shed,
            "dead_letters": self.context.dead_letters.total,
            "leaked_actors": list(self.leaked_actors),
            "crashed_channels": sorted(set(self.crashed_channels)),
            "error": self.error,
        }

    def shutdown(self) -> None:
        """Force everything down (after the report, or on abort)."""
        self.source_stop.set()
        self.abort.set()
        for mailbox in self.mailboxes.values():
            mailbox.close()
        for sender in self.senders.values():
            sender.mailbox.close()
        for actor in self.actors.values():
            if actor.is_alive():
                actor.join(timeout=1.0)
        for conn in self.send_conns.values():
            try:
                conn.close()
            except OSError:
                pass


def _worker_main(shard: int, plan: _PhysicalPlan, topology: Topology,
                 factories: Mapping[str, OperatorFactory],
                 config: ProcShardConfig,
                 channel_conns: Mapping[int, Tuple[Any, ...]],
                 control: Any,
                 foreign_controls: Sequence[Any]) -> None:
    """Worker-process entry point (fork start method: state inherited)."""
    # Drop inherited descriptors this shard does not own, so a crashed
    # peer surfaces as EOF instead of a silently-open orphaned pipe.
    for conn in foreign_controls:
        conn.close()
    local = {nid for nid in plan.order if plan.nodes[nid].shard == shard}
    for link in plan.links:
        if link.channel is None:
            continue
        data_recv, data_send, ack_recv, ack_send = channel_conns[link.channel]
        if link.receiver not in local:
            data_recv.close()
            ack_send.close()
        if link.sender not in local:
            data_send.close()
            ack_recv.close()

    def make_operator(name: str) -> Operator:
        factory = factories.get(name)
        if factory is not None:
            return factory()
        spec = topology.operator(name) if name in topology else None
        if spec is not None and spec.operator_class:
            return instantiate_operator(spec.operator_class,
                                        spec.operator_args)
        raise TopologyError(
            f"no factory nor operator_class for operator {name!r}")

    worker = _ShardWorker(shard, plan, topology, make_operator, config,
                          channel_conns)
    worker.start()
    try:
        while True:
            try:
                command = control.recv()
            except (EOFError, OSError):
                break
            if command == "snapshot":
                control.send(("snapshot", worker.snapshot()))
            elif command == "stop":
                worker.source_stop.set()
                control.send(("stopped", None))
            elif command == "report":
                worker.reaper.join(timeout=config.drain_timeout)
                if worker.reaper.is_alive() and worker.error is None:
                    worker.error = (f"shard {shard}: drain timed out after "
                                    f"{config.drain_timeout}s")
                control.send(("report", worker.report()))
                break
    finally:
        worker.shutdown()
        try:
            control.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# driver


class ProcShardResult:
    """Measurements of one multi-process sharded run.

    API-compatible with :class:`~repro.runtime.system.RuntimeResult`
    where the conformance harness needs it (``vertices``,
    ``throughput``, ``dropped_messages``), plus the process-specific
    hygiene: leaked workers, crashed channels, per-shard errors.
    """

    def __init__(self, topology: Topology,
                 measurements: RuntimeMeasurements,
                 placement: Mapping[str, Tuple[int, ...]],
                 sink_items: Mapping[str, List[Any]],
                 sink_counts: Mapping[str, int],
                 leaked_actors: Sequence[str] = (),
                 leaked_workers: Sequence[str] = (),
                 crashed_channels: Sequence[int] = (),
                 failure: Optional[str] = None) -> None:
        self.topology = topology
        self.measurements = measurements
        self.vertices = measurements.vertex_rates()
        self.placement = dict(placement)
        self.sink_items = dict(sink_items)
        self.sink_counts = dict(sink_counts)
        self.leaked_actors = tuple(leaked_actors)
        self.leaked_workers = tuple(leaked_workers)
        self.crashed_channels = tuple(crashed_channels)
        self.failure = failure

    @property
    def throughput(self) -> float:
        """Measured topology throughput: source departure rate."""
        return self.vertices[self.topology.source].departure_rate

    @property
    def dropped_messages(self) -> int:
        return self.measurements.total_dropped()

    def departure_rate(self, vertex: str) -> float:
        return self.vertices[vertex].departure_rate


class ProcShardSystem:
    """Driver of a set of shard worker processes executing one topology.

    Mirrors the :class:`~repro.runtime.system.ActorSystem` surface:
    :meth:`build`, :meth:`run` (wall-clock window with warmup) and
    :meth:`run_to_exhaustion` (drain ``max_items`` losslessly, for
    differential bit-equality runs).
    """

    def __init__(self, topology: Topology,
                 factories: Mapping[str, OperatorFactory],
                 config: ProcShardConfig,
                 placement: Mapping[str, Tuple[int, ...]]) -> None:
        self.topology = topology
        self.factories = dict(factories)
        self.config = config
        self.placement = {name: tuple(shards)
                          for name, shards in placement.items()}
        self.plan = _build_plan(topology, self.placement, config)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX only
            raise TopologyError(
                "the process backend requires the fork start method"
            ) from error
        # Per channel: a one-way data pipe and a one-way ack (credit)
        # pipe flowing the other way.
        self._channel_conns: Dict[int, Tuple[Any, Any, Any, Any]] = {}
        for cid in range(self.plan.channel_count):
            data_recv, data_send = self._ctx.Pipe(duplex=False)
            ack_recv, ack_send = self._ctx.Pipe(duplex=False)
            self._channel_conns[cid] = (data_recv, data_send,
                                        ack_recv, ack_send)
        self._controls: List[Tuple[Any, Any]] = [
            self._ctx.Pipe(duplex=True) for _ in range(config.shards)
        ]
        child_conns = [child for _, child in self._controls]
        self.processes = [
            self._ctx.Process(
                target=_worker_main,
                args=(shard, self.plan, topology, self.factories, config,
                      self._channel_conns, child_conns[shard],
                      [c for i, c in enumerate(child_conns) if i != shard]),
                name=f"procshard-{topology.name}-{shard}",
                daemon=True,
            )
            for shard in range(config.shards)
        ]
        self._started = False
        self._finished = False

    @classmethod
    def build(cls, topology: Topology,
              factories: Optional[Mapping[str, OperatorFactory]] = None,
              config: Optional[ProcShardConfig] = None,
              placement: Optional[Mapping[str, Sequence[int]]] = None,
              ) -> "ProcShardSystem":
        """Plan placement (unless given) and wire the worker processes."""
        config = config or ProcShardConfig()
        if placement is None:
            from repro.codegen.deployment import shard_placement

            placement = shard_placement(
                topology, shards=config.shards,
                utilization_threshold=config.utilization_threshold,
            ).as_mapping()
        normalized = {name: tuple(shards)
                      for name, shards in placement.items()}
        for spec in topology.operators:
            shards = normalized.get(spec.name)
            if shards is None or len(shards) != spec.replication:
                raise TopologyError(
                    f"placement for {spec.name!r} must name "
                    f"{spec.replication} shards (rule SS311)")
            if any(not 0 <= s < config.shards for s in shards):
                raise TopologyError(
                    f"placement for {spec.name!r} uses a shard outside "
                    f"[0, {config.shards}) (rule SS311)")
            if len(set(shards)) > 1 and spec.state is StateKind.STATEFUL:
                raise TopologyError(
                    f"placement for {spec.name!r} scatters a stateful "
                    f"operator over shards {sorted(set(shards))} "
                    "(rule SS312)")
        if not config.unsafe:
            from repro.analysis.deploy import deploy_errors

            blocking = deploy_errors(topology, ["SS301", "SS305"])
            if blocking:
                raise TopologyError(
                    "deployment-safety gate refused the process build "
                    "(unsafe=True overrides): "
                    + "; ".join(d.render() for d in blocking[:3])
                )
        return cls(topology, factories or {}, config, normalized)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("sharded system already started")
        self._started = True
        for process in self.processes:
            process.start()
        # The workers inherited every channel end they need; the driver
        # keeps only the control pipes.
        for conns in self._channel_conns.values():
            for conn in conns:
                conn.close()
        for _, child in self._controls:
            child.close()

    def _request(self, command: str, timeout: float
                 ) -> Dict[int, Optional[Any]]:
        """Broadcast a control command; gather one reply per worker."""
        replies: Dict[int, Optional[Any]] = {}
        for shard, (parent, _) in enumerate(self._controls):
            try:
                parent.send(command)
            except (BrokenPipeError, OSError):
                replies[shard] = None
        deadline = time.monotonic() + timeout
        for shard, (parent, _) in enumerate(self._controls):
            if shard in replies:
                continue
            remaining = max(deadline - time.monotonic(), 0.01)
            try:
                if parent.poll(remaining):
                    _, body = parent.recv()
                    replies[shard] = body
                else:
                    replies[shard] = None
            except (EOFError, OSError):
                replies[shard] = None
        return replies

    def snapshot(self, timeout: float = 10.0) -> Dict[str, CounterSnapshot]:
        """Merged live counter snapshots across every shard."""
        merged: Dict[str, CounterSnapshot] = {}
        for body in self._request("snapshot", timeout).values():
            if body:
                merged.update(body)
        return merged

    def finish(self, stop: bool = True,
               timeout: Optional[float] = None) -> Dict[int, Any]:
        """Drain, collect per-shard reports and reap every worker.

        With ``stop`` the sources are told to retire first (wall-clock
        runs); without it the call waits for ``max_items`` exhaustion to
        ripple through the EOS cascade (lossless differential runs).
        Always terminates and joins stragglers: no zombies survive.
        """
        if self._finished:
            raise RuntimeError("sharded system already finished")
        self._finished = True
        timeout = timeout if timeout is not None else self.config.drain_timeout
        if stop:
            self._request("stop", timeout=min(timeout, 10.0))
        reports = self._request("report", timeout=timeout)
        self.leaked_workers: List[str] = []
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():
                self.leaked_workers.append(process.name)
                process.terminate()
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=5.0)
        for parent, _ in self._controls:
            try:
                parent.close()
            except OSError:
                pass
        return reports

    def stop(self) -> List[str]:
        """Abort the run; returns the names of force-killed workers."""
        if not self._finished:
            self.finish(stop=True, timeout=5.0)
        return list(self.leaked_workers)

    # -- measurement ---------------------------------------------------

    def _assemble(self, reports: Dict[int, Any], window: float,
                  before: Optional[Mapping[str, CounterSnapshot]] = None,
                  after: Optional[Mapping[str, CounterSnapshot]] = None,
                  ) -> ProcShardResult:
        zero = ActorCounters().snapshot()
        totals: Dict[str, CounterSnapshot] = {}
        vertices: Dict[str, str] = {}
        sink_items: Dict[str, List[Any]] = {}
        sink_counts: Dict[str, int] = {}
        leaked_actors: List[str] = []
        crashed: List[int] = []
        failures: List[str] = []
        missing = [shard for shard, report in reports.items()
                   if report is None]
        for shard in missing:
            failures.append(f"shard {shard}: no report (worker lost)")
        for report in reports.values():
            if report is None:
                continue
            totals.update(report["snapshots"])
            vertices.update(report["vertices"])
            leaked_actors.extend(report["leaked_actors"])
            crashed.extend(report["crashed_channels"])
            if report["error"]:
                failures.append(report["error"])
            for vertex, entry in report["sinks"].items():
                sink_counts[vertex] = (sink_counts.get(vertex, 0)
                                       + entry["count"])
                sink_items.setdefault(vertex, []).extend(entry["items"])
        if after is None:
            after = totals
        if before is None:
            before = {}
        rates: Dict[str, ActorRates] = {}
        for nid in self.plan.order:
            end = after.get(nid)
            if end is None:
                continue
            rates[nid] = rates_between(
                nid, vertices.get(nid, self.plan.nodes[nid].vertex),
                before.get(nid, zero), end, window)
        measurements = RuntimeMeasurements(duration=window, actors=rates,
                                           totals=totals)
        return ProcShardResult(
            self.topology, measurements, self.placement,
            sink_items, sink_counts,
            leaked_actors=leaked_actors,
            leaked_workers=getattr(self, "leaked_workers", ()),
            crashed_channels=sorted(set(crashed)),
            failure="; ".join(failures) if failures else None,
        )

    def run(self, duration: float,
            warmup: Optional[float] = None) -> ProcShardResult:
        """Run for ``duration`` seconds, measuring after ``warmup``."""
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        if warmup is None:
            warmup = duration * 0.25
        if not 0.0 <= warmup < duration:
            raise ValueError(f"warmup must be in [0, duration), got {warmup}")
        self.start()
        time.sleep(warmup)
        before = self.snapshot()
        started = time.perf_counter()
        time.sleep(duration - warmup)
        after = self.snapshot()
        window = max(time.perf_counter() - started, 1e-9)
        reports = self.finish(stop=True)
        return self._assemble(reports, window, before=before, after=after)

    def run_to_exhaustion(self) -> ProcShardResult:
        """Drain ``config.max_items`` through the EOS cascade, lossless."""
        if self.config.max_items is None:
            raise TopologyError(
                "run_to_exhaustion requires ProcShardConfig.max_items")
        self.start()
        started = time.perf_counter()
        reports = self.finish(stop=False)
        window = max(time.perf_counter() - started, 1e-9)
        return self._assemble(reports, window)


def run_sharded(topology: Topology,
                factories: Mapping[str, OperatorFactory],
                duration: float = 2.0,
                warmup: Optional[float] = None,
                config: Optional[ProcShardConfig] = None,
                placement: Optional[Mapping[str, Sequence[int]]] = None,
                ) -> ProcShardResult:
    """Build, run and measure a topology on the process backend."""
    system = ProcShardSystem.build(topology, factories, config=config,
                                   placement=placement)
    return system.run(duration, warmup=warmup)
