"""Online re-optimization: close the loop between profiling and solving.

The paper's workflow is static — profile once, restructure offline,
redeploy.  This module runs the same machinery *against a live system*:
a controller thread samples per-operator counter deltas every control
period, feeds confident drifts through the incremental solver
(:func:`repro.core.plandiff.replan`, built on ``analyze_edit``'s
memoized core), and applies the minimal replica resizes to the running
:class:`~repro.runtime.system.ActorSystem` without stopping the world
(scale-up spawns replicas behind the emitter; scale-down drains them
in FIFO order — see ``ActorSystem.scale_vertex``).

Decision discipline (what keeps the loop from thrashing):

* estimates gate on ``min_items`` per window — noise never drives a
  replan (:mod:`repro.profiling.online`);
* a measured parameter is adopted only when it drifted more than
  ``change_threshold`` from the deployed plan's figure;
* a plan is applied only when the predicted throughput gain clears
  ``gain_margin`` (scale-up) or costs less than ``shrink_slack``
  while freeing replicas (scale-down);
* after firing, the controller holds off for ``cooldown_ticks`` and
  resets its windows so the old regime's samples don't pollute the
  new steady state.

Every decision — fired or not — lands in the controller's decision
log, a pure function of the sampled counter sequence: replaying the
same tick deltas replays the same decisions bit for bit (the adaptive
conformance suite relies on this).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.graph import Topology
from repro.core.plandiff import (
    PlanDiff,
    ReplicaChange,
    VertexMeasurement,
    replan,
)
from repro.profiling.online import (
    EstimatorConfig,
    OnlineEstimator,
    VertexEstimate,
)
from repro.runtime.meta import MetaOperatorActor
from repro.runtime.actors import OperatorActor
from repro.runtime.system import ActorSystem


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive control loop."""

    #: Seconds between control ticks (the sampling period).
    control_period: float = 0.25
    #: Windowing and confidence knobs of the online estimators.
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    #: Predicted relative throughput gain required to scale up.
    gain_margin: float = 0.10
    #: Predicted relative throughput loss tolerated when freeing
    #: replicas (over-provisioning cleanup).
    shrink_slack: float = 0.05
    #: Ticks to hold off after a reconfiguration (the new regime needs
    #: a full window of fresh samples before it can be judged).
    cooldown_ticks: int = 3
    #: Replica budget handed to the re-solve (``None`` = unbounded).
    max_replicas: Optional[int] = None
    #: Seed for the estimators' reservoirs.
    seed: int = 1
    #: Escape hatch for the SS314 deployment-safety gate: ``True``
    #: allows a zero-tick cooldown (replans faster than one control
    #: period can measure).
    unsafe: bool = False

    def __post_init__(self) -> None:
        if self.control_period <= 0.0:
            raise ValueError(
                f"control_period must be positive, got {self.control_period}")
        if self.cooldown_ticks < 0:
            raise ValueError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}")
        if self.cooldown_ticks < 1 and not self.unsafe:
            raise ValueError(
                "cooldown_ticks < 1 re-plans faster than one control "
                "period can measure (rule SS314); pass unsafe=True to "
                "override")


@dataclass(frozen=True)
class ControllerDecision:
    """One control tick's verdict, fired or not."""

    tick: int
    fired: bool
    reason: str
    actions: Tuple[ReplicaChange, ...] = ()
    #: Analytical throughput of the deployment under measured rates at
    #: decision time (``None`` when no replan was attempted).
    predicted_current: Optional[float] = None
    #: Analytical throughput of the plan the controller moved to.
    predicted_target: Optional[float] = None
    #: Confident estimates that drove the decision.
    estimates: Tuple[VertexEstimate, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form for decision-log artifacts."""
        return {
            "tick": self.tick,
            "fired": self.fired,
            "reason": self.reason,
            "actions": [
                {"vertex": action.vertex, "before": action.before,
                 "after": action.after}
                for action in self.actions
            ],
            "predicted_current": self.predicted_current,
            "predicted_target": self.predicted_target,
            "estimates": [
                {"vertex": estimate.vertex,
                 "service_time": estimate.service_time,
                 "gain": estimate.gain,
                 "samples": estimate.samples,
                 "confident": estimate.confident}
                for estimate in self.estimates
            ],
        }


def plan_reconfiguration(
    topology: Topology,
    current_replications: Mapping[str, int],
    estimates: Mapping[str, VertexEstimate],
    offered_rate: Optional[float],
    scalable: Sequence[str],
    config: AdaptiveConfig,
) -> Tuple[Optional[PlanDiff], str]:
    """Decide one tick, purely: ``(diff, reason)``.

    ``diff`` is ``None`` when the controller should not act; ``reason``
    always explains why.  A deterministic function of its arguments —
    no clocks, no ambient state — so decision sequences replay exactly.
    """
    threshold = config.estimator.change_threshold
    measurements: Dict[str, VertexMeasurement] = {}
    for spec in topology.operators:
        estimate = estimates.get(spec.name)
        if estimate is None or not estimate.confident:
            continue
        service = None
        gain = None
        if estimate.service_changed(spec.service_time, threshold):
            service = estimate.service_time
        declared_gain = spec.gain
        if estimate.gain_changed(declared_gain, threshold):
            gain = estimate.gain
        if service is not None or gain is not None:
            measurements[spec.name] = VertexMeasurement(
                vertex=spec.name,
                service_time=service,
                gain=gain,
                samples=estimate.samples,
            )
    if not measurements:
        return None, "no confident parameter drift"
    diff = replan(
        topology,
        current_replications,
        measurements,
        source_rate=offered_rate,
        max_replicas=config.max_replicas,
        scalable=scalable,
    )
    if not diff.actions:
        return None, (
            f"drift in {sorted(measurements)} but replan matches the "
            f"deployed replica counts")
    if diff.replica_delta > 0:
        if diff.predicted_gain < config.gain_margin:
            return None, (
                f"predicted gain {diff.predicted_gain:+.1%} below the "
                f"{config.gain_margin:.1%} margin")
    else:
        if diff.predicted_gain < -config.shrink_slack:
            return None, (
                f"shrinking would cost {-diff.predicted_gain:.1%} "
                f"throughput (> {config.shrink_slack:.1%} slack)")
    vertices = ", ".join(
        f"{action.vertex}:{action.before}->{action.after}"
        for action in diff.actions)
    return diff, f"drift in {sorted(measurements)}; resize {vertices}"


class AdaptiveController(threading.Thread):
    """The control loop: sample → estimate → replan → reconfigure.

    Runs as a daemon thread next to a started :class:`ActorSystem`
    built with ``RuntimeConfig(elastic=True)``.  ``tick()`` is public:
    the conformance tests drive it manually (no thread) so the whole
    decision sequence is a deterministic replay.
    """

    def __init__(self, system: ActorSystem, topology: Topology,
                 config: Optional[AdaptiveConfig] = None) -> None:
        super().__init__(name="adaptive-controller", daemon=True)
        self.system = system
        self.topology = topology
        self.config = config or AdaptiveConfig()
        self.scalable = tuple(
            name for name in system.scalable_vertices()
            if name != topology.source and name in topology)
        self.estimators: Dict[str, OnlineEstimator] = {
            spec.name: OnlineEstimator(
                spec.name, self.config.estimator,
                seed=self.config.seed + index)
            for index, spec in enumerate(topology.operators)
            if spec.name != topology.source
        }
        #: Full decision log, one entry per tick (artifact material).
        self.decisions: List[ControllerDecision] = []
        #: Reconfigurations this controller applied.
        self.reconfigurations = 0
        self._cooldown = 0
        self._last_totals: Dict[str, Tuple[int, int, float]] = {}
        self._stop_event = threading.Event()
        self._tick = 0

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _vertex_totals(self) -> Dict[str, Tuple[int, int, float]]:
        """Cumulative (processed, emitted, busy) per measured vertex.

        Sums operator-executing actors only (replicas, meta, loop);
        emitters, collectors and the source are plumbing, not service.
        """
        totals: Dict[str, List[float]] = {}
        for actor in list(self.system.actors):
            if not isinstance(actor, (OperatorActor, MetaOperatorActor)):
                continue
            if actor.vertex not in self.estimators:
                continue
            counters = actor.counters
            bucket = totals.setdefault(actor.vertex, [0, 0, 0.0])
            bucket[0] += counters.processed
            bucket[1] += counters.emitted
            bucket[2] += counters.busy_time
        return {vertex: (int(processed), int(emitted), busy)
                for vertex, (processed, emitted, busy) in totals.items()}

    def observe(self) -> None:
        """Sample one tick's counter deltas into the estimators."""
        totals = self._vertex_totals()
        for vertex, (processed, emitted, busy) in totals.items():
            last = self._last_totals.get(vertex, (0, 0, 0.0))
            self.estimators[vertex].observe(
                max(0, processed - last[0]),
                max(0, emitted - last[1]),
                max(0.0, busy - last[2]),
            )
        self._last_totals = totals

    # ------------------------------------------------------------------
    # deciding and acting
    # ------------------------------------------------------------------
    def offered_rate(self) -> Optional[float]:
        """The demand at the boundary: the source's configured rate.

        Deliberately *not* the measured source departure rate — under a
        saturated bottleneck the measured rate collapses to the
        bottleneck's capacity and would hide exactly the overload the
        controller must react to.
        """
        source = self.system.source_actor
        return None if source is None else source.rate

    def tick(self) -> ControllerDecision:
        """One full control period: sample, decide, maybe act."""
        self._tick += 1
        self.observe()
        if self._cooldown > 0:
            self._cooldown -= 1
            decision = ControllerDecision(
                tick=self._tick, fired=False,
                reason=f"cooldown ({self._cooldown} ticks left)")
            self.decisions.append(decision)
            return decision
        estimates = {vertex: estimator.estimate()
                     for vertex, estimator in self.estimators.items()}
        current = {name: self.system.replication_of(name)
                   for name in self.topology.names}
        diff, reason = plan_reconfiguration(
            self.topology, current, estimates, self.offered_rate(),
            self.scalable, self.config)
        if diff is None:
            decision = ControllerDecision(
                tick=self._tick, fired=False, reason=reason,
                estimates=tuple(estimate for estimate in estimates.values()
                                if estimate.confident))
            self.decisions.append(decision)
            return decision
        applied: List[ReplicaChange] = []
        failures: List[str] = []
        for action in diff.actions:
            try:
                self.system.scale_vertex(action.vertex, action.after)
                applied.append(action)
            except Exception as error:  # noqa: BLE001 - log, keep looping
                failures.append(
                    f"{action.vertex}: {type(error).__name__}: {error}")
        if applied:
            self.reconfigurations += len(applied)
            self._cooldown = self.config.cooldown_ticks
            for estimator in self.estimators.values():
                estimator.reset()
            self._last_totals = self._vertex_totals()
        if failures:
            reason = f"{reason}; failed: {'; '.join(failures)}"
        decision = ControllerDecision(
            tick=self._tick,
            fired=bool(applied),
            reason=reason,
            actions=tuple(applied),
            predicted_current=diff.current_analysis.throughput,
            predicted_target=diff.target_analysis.throughput,
            estimates=tuple(estimate for estimate in estimates.values()
                            if estimate.confident),
        )
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # thread lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - thread body, exercised E2E
        while not self._stop_event.wait(self.config.control_period):
            if self.system.stop_event.is_set():
                break
            try:
                self.tick()
            except Exception as error:  # noqa: BLE001 - keep looping
                self.decisions.append(ControllerDecision(
                    tick=self._tick, fired=False,
                    reason=f"tick failed: {type(error).__name__}: {error}"))

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the loop and join the thread (no-op if never started)."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def fired_decisions(self) -> List[ControllerDecision]:
        return [decision for decision in self.decisions if decision.fired]

    def decision_log(self) -> List[Dict[str, Any]]:
        """JSON-ready decision log (CI uploads this as an artifact)."""
        return [decision.as_dict() for decision in self.decisions]


def wait_for_adaptation(controller: AdaptiveController,
                        timeout: float = 10.0,
                        poll: float = 0.02) -> bool:
    """Block until the controller fired at least once (or timeout)."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if controller.fired_decisions:
            return True
        time.sleep(poll)
    return False
