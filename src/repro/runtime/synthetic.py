"""Synthetic service-time padding for runtime experiments.

The paper's evaluation runs on a 24-core machine where every actor owns
a dedicated hardware thread.  Under CPython's GIL, CPU-burning actors
would serialize on a single core and the measured rates would no longer
match the dedicated-core queueing model.  :class:`PaddedOperator`
sidesteps this by realizing the configured service time as a sleep
(which releases the GIL) plus the inner operator's real work: each actor
behaves exactly as if it ran on its own core, preserving the queueing
and backpressure behaviour the experiments measure.  DESIGN.md documents
this substitution.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional

from repro.operators.base import Operator


class GainOperator(Operator):
    """Realize a configured gain (selectivity ratio) deterministically.

    Emits ``gain`` outputs per input via a credit accumulator: each
    input adds ``gain`` credits and one copy of the item departs per
    whole credit.  Over any window of N inputs the realized selectivity
    is within one item of ``gain * N`` — no sampling noise, which is
    what makes short wall-clock conformance runs comparable with the
    analytical model at tight tolerances.
    """

    def __init__(self, gain: float) -> None:
        if gain < 0.0:
            raise ValueError(f"gain must be non-negative, got {gain}")
        self.output_selectivity = gain
        self._credit = 0.0

    def operator_function(self, item: Any) -> List[Any]:
        self._credit += self.gain
        count = int(self._credit)
        self._credit -= count
        if count <= 0:
            return []
        if count == 1:
            return [item]
        return [item] * count

    def describe(self) -> str:
        return f"GainOperator(gain={self.gain:g})"


class BusyOperator(Operator):
    """Burn CPU for ``busy_time`` seconds per item, holding the GIL.

    The adversarial counterpart of :class:`PaddedOperator`: the service
    time is realized as a spin loop instead of a sleep, so concurrent
    threaded replicas serialize on one core while process-sharded
    replicas scale with the hardware.  This is the workload the
    ``spinstreams bench --sharding`` suite uses to measure what the
    multi-process backend actually buys.
    """

    def __init__(self, busy_time: float) -> None:
        if busy_time <= 0.0:
            raise ValueError(f"busy_time must be positive, got {busy_time}")
        self.busy_time = busy_time

    def operator_function(self, item: Any) -> List[Any]:
        deadline = time.perf_counter() + self.busy_time
        while time.perf_counter() < deadline:
            pass
        return [item]

    def describe(self) -> str:
        return f"BusyOperator(busy_time={self.busy_time:g}s)"


class ServiceTimeControl:
    """Mutable, shared service-time knob read once per invocation.

    The adaptive conformance scenarios shift an operator's service time
    *mid-run* (the workload phase change the controller must detect).
    One control instance is shared between the test driver and every
    replica/rebuilt instance of the operator, so a live migration or
    supervision restart keeps seeing the current value.
    """

    __slots__ = ("service_time",)

    def __init__(self, service_time: float) -> None:
        if service_time <= 0.0:
            raise ValueError(f"service_time must be positive, got {service_time}")
        self.service_time = service_time

    def set(self, service_time: float) -> None:
        if service_time <= 0.0:
            raise ValueError(f"service_time must be positive, got {service_time}")
        self.service_time = service_time

    def scale(self, factor: float) -> None:
        self.set(self.service_time * factor)


class AdjustablePaddedOperator(Operator):
    """A :class:`PaddedOperator` whose padding can change mid-run.

    Reads the shared :class:`ServiceTimeControl` on every invocation;
    the control is deliberately excluded from state snapshots so a
    migrated or restarted instance re-attaches to the *live* knob
    instead of a deep-copied stale one.
    """

    def __init__(self, inner: Operator, control: ServiceTimeControl) -> None:
        self.inner = inner
        self.control = control
        self.state = inner.state
        self.input_selectivity = inner.input_selectivity
        self.output_selectivity = inner.output_selectivity

    def operator_function(self, item: Any) -> List[Any]:
        service_time = self.control.service_time
        started = time.perf_counter()
        outputs = self.inner.operator_function(item)
        remaining = service_time - (time.perf_counter() - started)
        if remaining > 0.0:
            time.sleep(remaining)
        return outputs

    def snapshot_state(self) -> dict:
        return {"inner": self.inner.snapshot_state()}

    def restore_state(self, snapshot: dict) -> None:
        self.inner.restore_state(snapshot["inner"])

    def on_start(self) -> None:
        self.inner.on_start()

    def on_stop(self) -> None:
        self.inner.on_stop()

    def key_of(self, item: Any) -> Optional[str]:
        return self.inner.key_of(item)

    def describe(self) -> str:
        return (
            f"AdjustablePaddedOperator({self.inner.describe()}, "
            f"service_time={self.control.service_time:g}s)"
        )


class PaddedOperator(Operator):
    """Wrap an operator so each invocation lasts ``service_time`` seconds.

    The inner operator's real compute time counts toward the target
    service time; the remainder is slept.  State kind and selectivities
    mirror the inner operator so fission and fusion decisions carry over.
    """

    def __init__(self, inner: Operator, service_time: float) -> None:
        if service_time <= 0.0:
            raise ValueError(f"service_time must be positive, got {service_time}")
        self.inner = inner
        self.service_time = service_time
        self.state = inner.state
        self.input_selectivity = inner.input_selectivity
        self.output_selectivity = inner.output_selectivity

    def operator_function(self, item: Any) -> List[Any]:
        started = time.perf_counter()
        outputs = self.inner.operator_function(item)
        remaining = self.service_time - (time.perf_counter() - started)
        if remaining > 0.0:
            time.sleep(remaining)
        return outputs

    def on_start(self) -> None:
        self.inner.on_start()

    def on_stop(self) -> None:
        self.inner.on_stop()

    def key_of(self, item: Any) -> Optional[str]:
        return self.inner.key_of(item)

    def describe(self) -> str:
        return (
            f"PaddedOperator({self.inner.describe()}, "
            f"service_time={self.service_time:g}s)"
        )
