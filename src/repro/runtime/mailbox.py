"""Bounded blocking mailboxes with BAS semantics (Akka ``BoundedMailbox``).

The paper configures Akka actors with the ``BoundedMailbox`` which,
"besides having a fixed capacity, blocks the sending actor if the
destination mailbox is currently full", with a timeout after which the
item is discarded (Section 5.1).  This module reproduces exactly those
semantics: :meth:`BoundedMailbox.put` blocks the caller while the
mailbox is full (Blocking After Service) and returns ``False`` —
dropping the item — only when the configured timeout elapses.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Optional


class MailboxClosed(RuntimeError):
    """Raised when interacting with a closed mailbox."""


class BoundedMailbox:
    """A fixed-capacity FIFO mailbox with blocking senders.

    Parameters
    ----------
    capacity:
        Maximum number of queued messages.
    put_timeout:
        Default seconds a sender blocks on a full mailbox before the
        message is dropped; ``None`` blocks indefinitely.  The paper
        sets this "significantly higher than the maximum operators'
        service time" to avoid drops.
    """

    def __init__(self, capacity: int, put_timeout: Optional[float] = 5.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.put_timeout = put_timeout
        self._queue: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.dropped = 0
        self.enqueued = 0
        self.high_watermark = 0

    def put(self, message: Any, timeout: Optional[float] = -1.0) -> bool:
        """Enqueue ``message``; blocks while full (BAS).

        Returns ``True`` on success and ``False`` when the timeout
        elapsed and the message was dropped.  ``timeout=-1`` uses the
        mailbox default; ``None`` waits forever.
        """
        if timeout is not None and timeout < 0.0:
            timeout = self.put_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while len(self._queue) >= self.capacity:
                if self._closed:
                    raise MailboxClosed("mailbox closed while sender blocked")
                if deadline is None:
                    self._not_full.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        self.dropped += 1
                        return False
                    self._not_full.wait(remaining)
            if self._closed:
                raise MailboxClosed("cannot put into a closed mailbox")
            self._queue.append(message)
            self.enqueued += 1
            if len(self._queue) > self.high_watermark:
                self.high_watermark = len(self._queue)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Any:
        """Dequeue one message, blocking up to ``timeout`` seconds.

        Raises :class:`TimeoutError` when the timeout elapses with the
        mailbox still empty, and :class:`MailboxClosed` when the mailbox
        was closed and fully drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._queue:
                if self._closed:
                    raise MailboxClosed("mailbox closed and drained")
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise TimeoutError("mailbox get timed out")
                    self._not_empty.wait(remaining)
            message = self._queue.popleft()
            self._not_full.notify()
            return message

    def close(self) -> None:
        """Close the mailbox, waking all blocked senders and receivers."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed
