"""Bounded blocking mailboxes with BAS semantics (Akka ``BoundedMailbox``).

The paper configures Akka actors with the ``BoundedMailbox`` which,
"besides having a fixed capacity, blocks the sending actor if the
destination mailbox is currently full", with a timeout after which the
item is discarded (Section 5.1).  This module reproduces exactly those
semantics: :meth:`BoundedMailbox.put` blocks the caller while the
mailbox is full (Blocking After Service) and returns ``False`` —
dropping the item — only when the configured timeout elapses.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Optional, Sequence, Tuple


class MailboxClosed(RuntimeError):
    """Raised when interacting with a closed mailbox."""


class Batch:
    """An envelope carrying several tuples in one mailbox message.

    Batching senders (see :class:`repro.runtime.actors.BatchingTarget`)
    pack up to ``BatchConfig.size`` tuples into one ``Batch`` so the
    per-message mailbox hop (lock, condition wakeup, queue operation) is
    paid once per batch instead of once per tuple.  Receivers unpack the
    envelope and handle every tuple individually, so operator semantics
    are unchanged — the differential test layer gates bit-equality
    between batched and unbatched executions.
    """

    __slots__ = ("items",)

    def __init__(self, items: Tuple[Any, ...]) -> None:
        self.items = items

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"Batch({len(self.items)} items)"


class BoundedMailbox:
    """A fixed-capacity FIFO mailbox with blocking senders.

    Parameters
    ----------
    capacity:
        Maximum number of queued messages.
    put_timeout:
        Default seconds a sender blocks on a full mailbox before the
        message is dropped; ``None`` blocks indefinitely.  The paper
        sets this "significantly higher than the maximum operators'
        service time" to avoid drops.
    """

    def __init__(self, capacity: int, put_timeout: Optional[float] = 5.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.put_timeout = put_timeout
        self._queue: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        #: Messages dropped because a sender's put timed out (BAS drop).
        self.dropped = 0
        #: Messages shed by an injected mailbox drop window (faults).
        self.shed = 0
        self.enqueued = 0
        #: Put attempts, accepted or not — the arrival index the fault
        #: drop windows are expressed in.
        self.offered = 0
        self.high_watermark = 0
        #: Injected lossy windows: offered-index ranges that are shed.
        self.drop_windows: Tuple[Tuple[int, int], ...] = ()
        #: When set, every put is handed to this callback instead of
        #: being enqueued (a stopped actor's dead-letter diversion).
        self._divert: Optional[Callable[[Any], None]] = None

    def set_drop_windows(self,
                         windows: Sequence[Tuple[int, int]]) -> None:
        """Install injected lossy windows over the offered-index axis."""
        self.drop_windows = tuple(windows)

    def divert(self, callback: Callable[[Any], None]) -> None:
        """Divert this mailbox: drain the queue and reroute every put.

        Used when the owning actor is stopped by its supervisor:
        subsequent messages go to the dead-letter callback instead of
        accumulating (which would block the senders forever), and any
        blocked senders are released immediately.
        """
        with self._lock:
            drained = list(self._queue)
            self._queue.clear()
            self._divert = callback
            self._not_full.notify_all()
            self._not_empty.notify_all()
        for message in drained:
            callback(message)

    @property
    def diverted(self) -> bool:
        return self._divert is not None

    def put(self, message: Any, timeout: Optional[float] = -1.0,
            weight: int = 1, control: bool = False) -> bool:
        """Enqueue ``message``; blocks while full (BAS).

        Returns ``True`` on success and ``False`` when the timeout
        elapsed and the message was dropped.  ``timeout=-1`` uses the
        mailbox default; ``None`` waits forever.  ``weight`` is the
        number of tuples the message carries (> 1 for a :class:`Batch`):
        the ``dropped``/``shed``/``offered`` counters advance by it, so
        a timed-out batch of *k* tuples is accounted as *k* lost tuples
        rather than one lost message.

        ``control`` marks a control envelope (a checkpoint barrier): it
        neither advances the offered-tuple index nor can be shed by an
        injected drop window, so control flow stays invisible to the
        fault plans expressed over data-arrival indices.
        """
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        if timeout is not None and timeout < 0.0:
            timeout = self.put_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            if not control:
                index = self.offered
                self.offered += weight
                if self.drop_windows and any(
                        start <= index < end
                        for start, end in self.drop_windows):
                    self.shed += weight
                    return True
            while (len(self._queue) >= self.capacity
                   and self._divert is None):
                if self._closed:
                    raise MailboxClosed("mailbox closed while sender blocked")
                if deadline is None:
                    self._not_full.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        self.dropped += weight
                        return False
                    self._not_full.wait(remaining)
            if self._divert is not None:
                # The dead-letter callback only appends to a sink with
                # its own private lock, so invoking it under this lock
                # cannot deadlock.
                self._divert(message)
                return True
            if self._closed:
                raise MailboxClosed("cannot put into a closed mailbox")
            self._queue.append(message)
            self.enqueued += 1
            if len(self._queue) > self.high_watermark:
                self.high_watermark = len(self._queue)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Any:
        """Dequeue one message, blocking up to ``timeout`` seconds.

        Raises :class:`TimeoutError` when the timeout elapses with the
        mailbox still empty, and :class:`MailboxClosed` when the mailbox
        was closed and fully drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._queue:
                if self._closed:
                    raise MailboxClosed("mailbox closed and drained")
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise TimeoutError("mailbox get timed out")
                    self._not_empty.wait(remaining)
            message = self._queue.popleft()
            self._not_full.notify()
            return message

    def close(self) -> None:
        """Close the mailbox, waking all blocked senders and receivers."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed
