"""Actor supervision: directives, policies, dead letters and watchdog.

The paper deploys on Akka precisely because actor supervision lets an
optimized topology survive operator failures.  This module reproduces
the supervision vocabulary in a backend-neutral way, so the threaded
actor runtime (:mod:`repro.runtime`) and the discrete-event simulator
(:mod:`repro.sim`) apply *the same* policies and produce comparable
event logs:

* :class:`Directive` — the four Akka directives (Resume / Restart /
  Stop / Escalate);
* :class:`SupervisionPolicy` — per-operator directive selection with a
  max-restarts window and exponential restart backoff;
* :class:`SupervisorStrategy` — the per-vertex policy map of a system;
* :class:`SupervisionLog` / :class:`SupervisionEvent` — what happened,
  when, to whom (virtual timestamps in the simulator, wall-clock in the
  runtime);
* :class:`DeadLetterSink` — where dropped tuples go instead of
  silently vanishing;
* :class:`StallWatchdog` / :class:`WatchdogReport` — detection of BAS
  backpressure deadlocks (every actor blocked on a full mailbox) with
  the blocked cycle reported instead of the system hanging forever.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple


class Directive(Enum):
    """What a supervisor does with a failed operator (Akka semantics)."""

    RESUME = "resume"
    RESTART = "restart"
    STOP = "stop"
    ESCALATE = "escalate"


class PoisonedTuple(Exception):
    """An injected poison tuple: processing this item raises."""


class OperatorCrash(Exception):
    """An injected operator crash: the operator instance is unusable."""


class ActorStopped(Exception):
    """Internal control-flow signal: the actor must leave its loop."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """How one operator's failures are handled.

    ``on_error`` applies to ordinary exceptions from the operator
    function (the historical behaviour is Resume: drop the poisonous
    item and keep serving), ``on_poison`` to :class:`PoisonedTuple` and
    ``on_crash`` to :class:`OperatorCrash`.  A Restart re-instantiates
    the operator (fresh ``on_start``) after a backoff; more than
    ``max_restarts`` restarts within ``window`` seconds escalate the
    directive to Stop.
    """

    on_error: Directive = Directive.RESUME
    on_crash: Directive = Directive.RESTART
    on_poison: Directive = Directive.RESUME
    #: Directive applied once the restart budget is exhausted (more
    #: than ``max_restarts`` restarts within ``window``).  The
    #: historical behaviour is Stop; Escalate aborts the whole system.
    on_exhausted: Directive = Directive.STOP
    max_restarts: int = 5
    window: float = 10.0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    #: On Stop, divert the dead actor's mailbox to the dead-letter sink
    #: so upstream senders keep flowing; ``False`` leaves the mailbox to
    #: fill up (senders block — the regime the watchdog detects).
    divert_on_stop: bool = True

    def decide(self, error: BaseException) -> Directive:
        """The directive for one failure, by exception type."""
        if isinstance(error, PoisonedTuple):
            return self.on_poison
        if isinstance(error, OperatorCrash):
            return self.on_crash
        return self.on_error

    def decide_fault(self, kind: str) -> Directive:
        """The directive for an injected fault kind (simulator path)."""
        if kind == "poison":
            return self.on_poison
        if kind == "crash":
            return self.on_crash
        return self.on_error

    def exhausted_directive(self) -> Directive:
        """The directive once the restart budget is spent.

        A further Restart would be self-contradictory (the budget is the
        reason we are here), so it degrades to Stop.
        """
        if self.on_exhausted is Directive.RESTART:
            return Directive.STOP
        return self.on_exhausted

    def backoff(self, restart_number: int) -> float:
        """Downtime before the ``restart_number``-th restart (1-based)."""
        if restart_number < 1:
            restart_number = 1
        value = self.backoff_base * (
            self.backoff_factor ** (restart_number - 1))
        return min(value, self.backoff_max)


@dataclass(frozen=True)
class SupervisorStrategy:
    """The supervision policy map of one actor system."""

    default: SupervisionPolicy = field(default_factory=SupervisionPolicy)
    policies: Mapping[str, SupervisionPolicy] = field(default_factory=dict)

    def policy_for(self, vertex: str) -> SupervisionPolicy:
        return self.policies.get(vertex, self.default)


class RestartTracker:
    """Counts restarts inside a sliding window (one per supervised actor)."""

    def __init__(self, policy: SupervisionPolicy) -> None:
        self.policy = policy
        self.total = 0
        self._times: List[float] = []

    def record(self, now: float) -> bool:
        """Register a restart at ``now``; ``True`` when the limit is hit."""
        floor = now - self.policy.window
        self._times = [t for t in self._times if t >= floor]
        self._times.append(now)
        self.total += 1
        return len(self._times) > self.policy.max_restarts

    @property
    def in_window(self) -> int:
        return len(self._times)


@dataclass(frozen=True)
class SupervisionEvent:
    """One supervision decision: which operator failed, what was done."""

    time: float
    vertex: str
    actor: str
    directive: str
    reason: str
    item_index: Optional[int] = None
    restarts: int = 0

    def describe(self) -> str:
        item = f" item={self.item_index}" if self.item_index is not None else ""
        return (f"t={self.time:.4f}s {self.vertex} [{self.actor}] "
                f"{self.directive}{item} ({self.reason}, "
                f"restarts={self.restarts})")


class SupervisionLog:
    """Thread-safe, append-only log of supervision events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[SupervisionEvent] = []

    def record(self, event: SupervisionEvent) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> Tuple[SupervisionEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def count(self, directive: Optional[str] = None) -> int:
        with self._lock:
            if directive is None:
                return len(self._events)
            return sum(1 for e in self._events if e.directive == directive)

    def by_vertex(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for event in self._events:
                counts[event.vertex] = counts.get(event.vertex, 0) + 1
            return counts

    def signature(self) -> Tuple[Tuple[float, str, str, Optional[int]], ...]:
        """A replay-comparable digest: (time, vertex, directive, item)."""
        with self._lock:
            return tuple((e.time, e.vertex, e.directive, e.item_index)
                         for e in self._events)


@dataclass(frozen=True)
class DeadLetter:
    """One tuple that left the topology through the dead-letter sink."""

    vertex: str
    reason: str
    payload: Any = None


class DeadLetterSink:
    """Thread-safe sink for dropped tuples.

    Counts every dead letter per vertex and retains the first
    ``retain`` payloads for debugging — a hard cap, so sustained
    poison/chaos runs can't grow memory without limit.  Letters beyond
    the cap are counted in ``evicted`` (their payloads are discarded),
    keeping the loss visible instead of silent.
    """

    def __init__(self, retain: int = 100) -> None:
        if retain < 0:
            raise ValueError(f"retain must be >= 0, got {retain}")
        self.retain = retain
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._letters: List[DeadLetter] = []
        #: Dead letters whose payload was dropped because the retention
        #: cap was already full.
        self.evicted = 0

    def record(self, vertex: str, payload: Any = None,
               reason: str = "dropped") -> None:
        with self._lock:
            self._counts[vertex] = self._counts.get(vertex, 0) + 1
            if len(self._letters) < self.retain:
                self._letters.append(DeadLetter(vertex, reason, payload))
            else:
                self.evicted += 1

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    @property
    def letters(self) -> Tuple[DeadLetter, ...]:
        with self._lock:
            return tuple(self._letters)


class ActorContext:
    """Shared supervision services handed to every actor of a system."""

    def __init__(
        self,
        supervision: Optional[SupervisionLog] = None,
        dead_letters: Optional[DeadLetterSink] = None,
        escalate: Optional[Callable[[str, str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        request_recovery: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.supervision = supervision or SupervisionLog()
        self.dead_letters = dead_letters or DeadLetterSink()
        self._escalate = escalate
        self.clock = clock
        self._epoch = clock()
        #: When set (checkpointed systems), a Restart-able crash asks
        #: for a system-wide rollback instead of a cold actor restart
        #: (see :mod:`repro.runtime.checkpoint`).
        self.request_recovery = request_recovery

    def now(self) -> float:
        """Seconds since the context was created (log-friendly times)."""
        return self.clock() - self._epoch

    def escalate(self, vertex: str, reason: str) -> None:
        """Propagate a failure to the system level (stops the system)."""
        if self._escalate is not None:
            self._escalate(vertex, reason)


@dataclass(frozen=True)
class BlockedActor:
    """One actor observed blocked on a full downstream mailbox."""

    actor: str
    vertex: str
    blocked_on: str


@dataclass(frozen=True)
class WatchdogReport:
    """Verdict of the stall watchdog (or of the post-run leak check).

    ``verdict`` is ``"deadlock"`` when the blocked-on graph contains a
    cycle (the BAS deadlock of cyclic topologies), ``"stall"`` when
    progress stopped with blocked senders but no cycle (e.g. a stopped
    operator whose mailbox filled up), and ``"thread-leak"`` when
    ``ActorSystem.stop`` left actors alive after the join timeout.
    """

    verdict: str
    blocked: Tuple[BlockedActor, ...] = ()
    cycle: Tuple[str, ...] = ()
    stalled_for: float = 0.0
    leaked: Tuple[str, ...] = ()

    @property
    def is_deadlock(self) -> bool:
        return self.verdict == "deadlock"

    def describe(self) -> str:
        lines = [f"watchdog verdict: {self.verdict} "
                 f"(no progress for {self.stalled_for:.2f}s)"]
        if self.cycle:
            lines.append("  blocked cycle: " + " -> ".join(
                self.cycle + (self.cycle[0],)))
        for entry in self.blocked:
            lines.append(f"  {entry.actor} ({entry.vertex}) blocked on "
                         f"{entry.blocked_on}")
        if self.leaked:
            lines.append("  leaked actors: " + ", ".join(self.leaked))
        return "\n".join(lines)


def find_blocked_cycle(edges: Mapping[str, str]) -> Tuple[str, ...]:
    """A cycle in the vertex-level blocked-on graph, or ``()``.

    ``edges`` maps a blocked vertex to the vertex whose mailbox it waits
    on.  The graph is functional (first blocking edge wins per vertex),
    so a simple walk with a visit order finds any reachable cycle.
    """
    for start in edges:
        order: Dict[str, int] = {}
        node = start
        while node in edges and node not in order:
            order[node] = len(order)
            node = edges[node]
        if node in order:
            members = sorted(order, key=order.get)[order[node]:]
            # Normalize the rotation so the report is deterministic.
            pivot = members.index(min(members))
            return tuple(members[pivot:] + members[:pivot])
    return ()


class StallWatchdog(threading.Thread):
    """Detects systems that stopped making progress while blocked.

    Samples a progress counter every ``interval`` seconds; when the
    counter stays flat for ``stall_timeout`` seconds *and* at least one
    actor is blocked on a full mailbox, the watchdog builds a
    :class:`WatchdogReport` (classifying deadlock vs stall via the
    blocked-on cycle) and invokes ``on_stall`` — which typically stops
    the system so the run returns a verdict instead of hanging forever.
    """

    def __init__(
        self,
        progress: Callable[[], int],
        blocked: Callable[[], Sequence[BlockedActor]],
        on_stall: Callable[[WatchdogReport], None],
        interval: float = 0.1,
        stall_timeout: float = 1.0,
    ) -> None:
        super().__init__(name="stall-watchdog", daemon=True)
        self.progress = progress
        self.blocked = blocked
        self.on_stall = on_stall
        self.interval = interval
        self.stall_timeout = stall_timeout
        self.report: Optional[WatchdogReport] = None
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:  # pragma: no cover - thread body, exercised E2E
        last_progress = self.progress()
        last_change = time.monotonic()
        while not self._halt.wait(self.interval):
            current = self.progress()
            now = time.monotonic()
            if current != last_progress:
                last_progress = current
                last_change = now
                continue
            stalled_for = now - last_change
            if stalled_for < self.stall_timeout:
                continue
            blocked = tuple(self.blocked())
            if not blocked:
                # Quiescent but not blocked (e.g. the source drained);
                # nothing pathological to report.
                continue
            edges: Dict[str, str] = {}
            for entry in blocked:
                edges.setdefault(entry.vertex, entry.blocked_on)
            cycle = find_blocked_cycle(edges)
            self.report = WatchdogReport(
                verdict="deadlock" if cycle else "stall",
                blocked=blocked,
                cycle=cycle,
                stalled_for=stalled_for,
            )
            self.on_stall(self.report)
            return


def attach_leak(report: Optional[WatchdogReport],
                leaked: Sequence[str]) -> Optional[WatchdogReport]:
    """Fold post-join thread leaks into the watchdog verdict.

    With an existing report the leaked names are attached to it; leaks
    without a stall verdict produce a dedicated ``thread-leak`` report.
    Returns ``None`` when there is nothing to report.
    """
    leaked_tuple = tuple(leaked)
    if report is not None:
        if leaked_tuple and not report.leaked:
            return replace(report, leaked=leaked_tuple)
        return report
    if leaked_tuple:
        return WatchdogReport(verdict="thread-leak", leaked=leaked_tuple)
    return None
