"""Aligned-barrier checkpointing and effectively-once recovery.

The supervision layer of PR 2 can *Restart* a crashed operator, but a
cold re-instantiation silently loses every counter, window and join
table the operator had accumulated — a "recovered" pipeline computes
wrong answers.  This module adds the missing primitive: consistent
global snapshots in the style of Chandy-Lamport markers as popularized
by Flink's aligned barriers.

How it works
------------

* The source injects a :class:`Barrier` control envelope into the data
  stream every ``interval_items`` emitted items, snapshotting its own
  state (RNG, replay position) and the emission *offset* right before.
* Barriers travel in-band through the ordinary mailboxes.  A sender
  first flushes its outgoing batch buffers, so a barrier never
  overtakes buffered tuples.  At a multi-input actor a
  :class:`BarrierAligner` holds the epoch open until the barrier
  arrived on *every* input channel, deferring post-barrier messages
  from channels that already delivered theirs — the alignment makes
  the in-flight channel state empty, so snapshots need only operator
  state.
* When an actor's barrier aligns it calls the operator's
  ``snapshot_state()`` hook and records the blob in the shared
  :class:`CheckpointStore`; an epoch is *complete* once every actor of
  the system recorded it.
* On a crash whose directive is Restart, a checkpointed system does
  not rebuild the operator cold: it requests **recovery**.  The
  :func:`run_recoverable` driver tears the system down, restores every
  operator (in place) from the last complete epoch, rewinds the source
  to the recorded offset and replays.  For deterministic topologies
  the sink output of a crash-and-recover run is bit-equal to the
  fault-free run — effectively-once semantics, which the differential
  harness (:mod:`repro.testing.differential`) checks seed by seed.

Fault schedules (:mod:`repro.faults`) are deliberately *not* rolled
back: the session keeps one persistent item clock per operator across
rebuilds, so an injected crash that already fired does not fire again
on the replayed items (otherwise recovery could never make progress).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    TYPE_CHECKING,
    Tuple,
)

from repro.core.graph import CheckpointConfig, Topology, TopologyError

if TYPE_CHECKING:  # imported lazily at runtime to avoid the cycle
    # (repro.runtime.system imports this module for the session type).
    from repro.core.fusion import FusionPlan
    from repro.runtime.supervision import DeadLetterSink, SupervisionLog
    from repro.runtime.system import ActorSystem, RuntimeConfig


class Barrier:
    """An epoch barrier: the Chandy-Lamport marker as a control envelope.

    Barriers flow through the same mailboxes as data (``(payload,
    origin)`` pairs) but are intercepted by the actor run loop before
    they reach any operator function.
    """

    __slots__ = ("epoch",)

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Barrier(epoch={self.epoch})"


class MigrationTicket:
    """An in-band drain-and-migrate request (control envelope).

    A ticket enqueued into a vertex's entry mailbox travels *behind*
    every data item already in flight, so by the time the owning actor
    dequeues it the operator has processed everything that preceded the
    migration point — the drain is implicit in mailbox FIFO order.  The
    actor then performs "checkpoint member → move state blob → restore
    → resume" synchronously in its own thread: ``snapshot_state()`` on
    the live operator, a fresh instance from the factory, and
    ``restore_state(blob)`` on the replacement, after which processing
    resumes with zero tuple loss (nothing is dequeued in between).

    For replicated vertices the emitter fans one ticket out to every
    replica; ``parts`` counts the outstanding acknowledgements so
    :meth:`wait` returns only when all members migrated.  ``member``
    optionally names a single meta-operator member to migrate
    (``None`` migrates every member).
    """

    __slots__ = ("vertex", "member", "parts", "errors", "_done", "_lock")

    def __init__(self, vertex: str, member: Optional[str] = None,
                 parts: int = 1) -> None:
        self.vertex = vertex
        self.member = member
        self.parts = parts
        self.errors: List[str] = []
        self._done = threading.Event()
        self._lock = threading.Lock()

    def split(self, parts: int) -> None:
        """Declare the ticket will be acknowledged ``parts`` times."""
        with self._lock:
            self.parts = parts

    def acknowledge(self, error: Optional[str] = None) -> None:
        """One member finished migrating (or failed with ``error``)."""
        with self._lock:
            if error is not None:
                self.errors.append(error)
            self.parts -= 1
            if self.parts <= 0:
                self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every part acknowledged; ``False`` on timeout."""
        return self._done.wait(timeout)

    @property
    def ok(self) -> bool:
        return self._done.is_set() and not self.errors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        member = f", member={self.member!r}" if self.member else ""
        return f"MigrationTicket(vertex={self.vertex!r}{member})"


class CheckpointError(RuntimeError):
    """A checkpointing invariant was violated."""


class CheckpointRestoreError(CheckpointError):
    """Restoring an epoch snapshot failed (the epoch is discarded)."""


@dataclass(frozen=True)
class EpochSnapshot:
    """One complete epoch: every actor's state blob plus the source offset."""

    epoch: int
    states: Mapping[str, Any]
    source_offset: Optional[int] = None


class CheckpointStore:
    """Thread-safe store of per-epoch actor snapshots.

    Actors record their blobs as barriers align on their mailboxes (so
    records for one epoch arrive from many threads, roughly in
    topological order).  An epoch *completes* when every expected actor
    recorded it; only the last ``retained`` complete epochs are kept.
    """

    def __init__(self, retained: int = 2) -> None:
        if retained < 1:
            raise CheckpointError(f"retained must be >= 1, got {retained}")
        self.retained = retained
        self._lock = threading.Lock()
        self._expected: frozenset = frozenset()
        self._partial: Dict[int, Dict[str, Any]] = {}
        self._offsets: Dict[int, int] = {}
        self._complete: Dict[int, EpochSnapshot] = {}
        #: Counters surfaced by the bench and the recovery report.
        self.recorded = 0
        self.completed = 0

    def set_expected(self, names: Iterable[str]) -> None:
        """Declare the actor set whose records complete an epoch."""
        with self._lock:
            self._expected = frozenset(names)

    def record(self, epoch: int, actor: str, blob: Any,
               offset: Optional[int] = None) -> None:
        """Record one actor's snapshot of ``epoch``."""
        with self._lock:
            states = self._partial.setdefault(epoch, {})
            states[actor] = blob
            self.recorded += 1
            if offset is not None:
                self._offsets[epoch] = offset
            if self._expected and self._expected <= set(states):
                self._complete[epoch] = EpochSnapshot(
                    epoch=epoch,
                    states=dict(states),
                    source_offset=self._offsets.pop(epoch, None),
                )
                del self._partial[epoch]
                self.completed += 1
                self._prune_locked()

    def _prune_locked(self) -> None:
        while len(self._complete) > self.retained:
            del self._complete[min(self._complete)]

    def latest_complete(self) -> Optional[EpochSnapshot]:
        """The most recent complete epoch, or ``None``."""
        with self._lock:
            if not self._complete:
                return None
            return self._complete[max(self._complete)]

    def complete_epochs(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._complete))

    def discard_above(self, epoch: int) -> None:
        """Drop every (partial or complete) epoch newer than ``epoch``.

        Called before a rollback rebuild: the failed attempt may have
        left half-recorded epochs behind; replay will re-record them.
        """
        with self._lock:
            for stale in [e for e in self._partial if e > epoch]:
                del self._partial[stale]
                self._offsets.pop(stale, None)
            for stale in [e for e in self._complete if e > epoch]:
                del self._complete[stale]

    def discard_epoch(self, epoch: int) -> None:
        """Drop one complete epoch (its restore failed)."""
        with self._lock:
            self._complete.pop(epoch, None)


class BarrierAligner:
    """Barrier alignment over one actor's input channels.

    ``channels`` is the set of origins expected to deliver barriers to
    this mailbox.  Used only from the owning actor's thread.  While an
    epoch is open (a barrier arrived on some but not all channels),
    messages from the already-barriered channels are deferred: they
    belong to the next epoch and must not contaminate the snapshot.
    """

    def __init__(self, channels: Sequence[str]) -> None:
        self.channels = frozenset(channels)
        self._seen: set = set()
        self._epoch: Optional[int] = None
        self._deferred: List[Tuple[Any, str]] = []
        #: Messages deferred over the aligner's lifetime (tests/metrics).
        self.deferred_total = 0

    @property
    def aligning(self) -> bool:
        return self._epoch is not None

    def observe(self, epoch: int, origin: str) -> bool:
        """Account one barrier arrival; ``True`` when the epoch aligned."""
        if len(self.channels) <= 1 or origin not in self.channels:
            return True
        if self._epoch is None:
            self._epoch = epoch
        self._seen.add(origin)
        if self._seen >= self.channels:
            self._epoch = None
            self._seen.clear()
            return True
        return False

    def deferring(self, origin: str) -> bool:
        """Whether messages from ``origin`` must currently be deferred."""
        return self._epoch is not None and origin in self._seen

    def defer(self, message: Tuple[Any, str]) -> None:
        self._deferred.append(message)
        self.deferred_total += 1

    def drain(self) -> List[Tuple[Any, str]]:
        """The deferred messages, in arrival order (clears the buffer)."""
        drained = self._deferred
        self._deferred = []
        return drained


class CheckpointSession:
    """Shared checkpoint services across the rebuilds of one recovery run.

    Holds the store, the restore target applied at the next build, and
    the persistent fault clocks (see the module docstring for why the
    clocks must survive rebuilds).
    """

    def __init__(self, config: CheckpointConfig,
                 store: Optional[CheckpointStore] = None) -> None:
        self.config = config
        self.store = store or CheckpointStore(retained=config.retained)
        #: Persistent :class:`repro.faults.injector.ItemClock` instances
        #: keyed by actor clock key, surviving teardown/rebuild cycles.
        self.clocks: Dict[str, Any] = {}
        #: Epoch snapshot the next ``ActorSystem.build`` restores from.
        self.restore: Optional[EpochSnapshot] = None

    def record(self, epoch: int, actor: str, blob: Any,
               offset: Optional[int] = None) -> None:
        self.store.record(epoch, actor, blob, offset=offset)


@dataclass(frozen=True)
class RecoveryEvent:
    """One rollback: which vertex crashed, which epoch was restored."""

    attempt: int
    vertex: str
    reason: str
    restored_epoch: Optional[int]
    at: float


@dataclass
class RecoveryResult:
    """Outcome of a :func:`run_recoverable` drive.

    ``outcome`` is ``"completed"`` (source exhausted and the system went
    quiescent), ``"exhausted"`` (more rollbacks than ``max_recoveries``),
    ``"failed"`` (an Escalate or watchdog abort) or ``"timeout"``.
    """

    outcome: str
    system: "ActorSystem"
    session: CheckpointSession
    recoveries: Tuple[RecoveryEvent, ...]
    wall_time: float
    leaked: Tuple[str, ...] = ()

    @property
    def attempts(self) -> int:
        return len(self.recoveries)

    @property
    def supervision(self) -> "SupervisionLog":
        return self.system.context.supervision

    @property
    def dead_letters(self) -> "DeadLetterSink":
        return self.system.context.dead_letters

    @property
    def epochs_completed(self) -> int:
        return self.session.store.completed


def _await_outcome(system: "ActorSystem", source_timeout: float,
                   quiet_period: float, quiet_timeout: float) -> str:
    """Poll one system run until completion, recovery request or failure."""
    poll = 0.01
    source = system.source_actor
    deadline = time.monotonic() + source_timeout
    while True:
        if system.recovery.is_set():
            return "recover"
        if system.failure.is_set():
            return "failed"
        if source is None or not source.is_alive():
            break
        if time.monotonic() > deadline:
            return "timeout"
        time.sleep(poll)
    # The source drained: wait for downstream quiescence (no progress
    # for a quiet period), still watching for late crashes.
    quiet_deadline = time.monotonic() + quiet_timeout
    last = system._progress()
    last_change = time.monotonic()
    while True:
        if system.recovery.is_set():
            return "recover"
        if system.failure.is_set():
            return "failed"
        now = time.monotonic()
        current = system._progress()
        if current != last:
            last = current
            last_change = now
        elif now - last_change >= quiet_period:
            return "completed"
        if now > quiet_deadline:
            return "timeout"
        time.sleep(poll)


def run_recoverable(
    topology: Topology,
    factories: Mapping[str, Any],
    runtime: Optional["RuntimeConfig"] = None,
    fusion_plans: Sequence["FusionPlan"] = (),
    checkpoint: Optional[CheckpointConfig] = None,
    max_recoveries: int = 8,
    source_timeout: float = 30.0,
    quiet_period: float = 0.25,
    quiet_timeout: float = 20.0,
) -> RecoveryResult:
    """Run a checkpointed topology to completion, rolling back on crashes.

    The driver loop: build the system (restoring every actor from the
    last complete epoch, if any), run until the source drains and the
    pipeline goes quiescent, and — whenever a crash requests recovery —
    stop the system, discard epochs newer than the restore target and
    rebuild.  Returns the *final* system (stopped) so callers can read
    sink contents, plus the roll-back trail.

    ``checkpoint`` overrides ``runtime.checkpoint`` which overrides
    ``topology.checkpoint``; one of them must be set.
    """
    from repro.runtime.system import ActorSystem, RuntimeConfig

    runtime = runtime or RuntimeConfig()
    config = checkpoint or runtime.checkpoint or topology.checkpoint
    if config is None:
        raise CheckpointError(
            "run_recoverable needs a CheckpointConfig (topology.checkpoint, "
            "runtime.checkpoint or the checkpoint argument)")
    if not runtime.unsafe:
        from repro.analysis.deploy import deploy_errors

        blocking = deploy_errors(topology, ["SS302", "SS303"])
        if blocking:
            raise TopologyError(
                "deployment-safety gate refused the recoverable run "
                "(RuntimeConfig(unsafe=True) overrides): "
                + "; ".join(d.render() for d in blocking[:3])
            )
    session = CheckpointSession(config)
    recoveries: List[RecoveryEvent] = []
    started = time.monotonic()
    while True:
        restored = session.store.latest_complete()
        if restored is not None:
            session.store.discard_above(restored.epoch)
        session.restore = restored
        try:
            system = ActorSystem.build(topology, factories, config=runtime,
                                       fusion_plans=fusion_plans,
                                       checkpoint=session)
        except CheckpointRestoreError as error:
            # The snapshot itself is unusable: discard it and fall back
            # to the previous complete epoch (or a cold start).  This is
            # the restore-crash supervision path: budgeted like any
            # other rollback so a persistently failing restore_state
            # cannot loop forever.
            assert restored is not None
            session.store.discard_epoch(restored.epoch)
            older = session.store.latest_complete()
            recoveries.append(RecoveryEvent(
                attempt=len(recoveries) + 1,
                vertex=getattr(error, "vertex", "<restore>"),
                reason=f"restore-failed: {error}",
                restored_epoch=older.epoch if older is not None else None,
                at=time.monotonic() - started,
            ))
            if len(recoveries) > max_recoveries:
                raise CheckpointError(
                    f"recovery budget exhausted ({max_recoveries}) while "
                    f"restoring: {error}") from error
            continue
        system.start()
        outcome = _await_outcome(system, source_timeout, quiet_period,
                                 quiet_timeout)
        leaked = system.stop()
        if outcome != "recover":
            return RecoveryResult(
                outcome=outcome,
                system=system,
                session=session,
                recoveries=tuple(recoveries),
                wall_time=time.monotonic() - started,
                leaked=tuple(leaked),
            )
        target = session.store.latest_complete()
        recoveries.append(RecoveryEvent(
            attempt=len(recoveries) + 1,
            vertex=system.recovery_vertex or "<unknown>",
            reason=system.recovery_reason or "crash",
            restored_epoch=target.epoch if target is not None else None,
            at=time.monotonic() - started,
        ))
        if len(recoveries) > max_recoveries:
            return RecoveryResult(
                outcome="exhausted",
                system=system,
                session=session,
                recoveries=tuple(recoveries),
                wall_time=time.monotonic() - started,
                leaked=tuple(leaked),
            )
