"""Threaded actor runtime — the Akka stand-in.

Bounded blocking mailboxes (:mod:`repro.runtime.mailbox`), operator /
emitter / collector / meta-operator actors
(:mod:`repro.runtime.actors`, :mod:`repro.runtime.meta`), the actor
system builder and measurement harness (:mod:`repro.runtime.system`)
and synthetic service-time padding (:mod:`repro.runtime.synthetic`).
"""

from repro.runtime.actors import (
    ActorBase,
    CollectorActor,
    EmitterActor,
    OperatorActor,
    Router,
    SourceActor,
    Target,
)
from repro.runtime.checkpoint import (
    Barrier,
    BarrierAligner,
    CheckpointError,
    CheckpointRestoreError,
    CheckpointSession,
    CheckpointStore,
    EpochSnapshot,
    RecoveryEvent,
    RecoveryResult,
    run_recoverable,
)
from repro.runtime.mailbox import BoundedMailbox, MailboxClosed
from repro.runtime.meta import MetaOperatorActor
from repro.runtime.procshard import (
    ChannelSender,
    ProcShardConfig,
    ProcShardResult,
    ProcShardSystem,
    run_sharded,
)
from repro.runtime.metrics import (
    ActorCounters,
    ActorRates,
    CounterSnapshot,
    RuntimeMeasurements,
    rates_between,
)
from repro.runtime.supervision import (
    ActorContext,
    BlockedActor,
    DeadLetter,
    DeadLetterSink,
    Directive,
    OperatorCrash,
    PoisonedTuple,
    StallWatchdog,
    SupervisionEvent,
    SupervisionLog,
    SupervisionPolicy,
    SupervisorStrategy,
    WatchdogReport,
    find_blocked_cycle,
)
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import (
    ActorSystem,
    RuntimeConfig,
    RuntimeResult,
    run_topology,
)

__all__ = [
    "ActorBase",
    "ActorContext",
    "ActorCounters",
    "ActorRates",
    "ActorSystem",
    "Barrier",
    "BarrierAligner",
    "BlockedActor",
    "BoundedMailbox",
    "CheckpointError",
    "CheckpointRestoreError",
    "ChannelSender",
    "CheckpointSession",
    "CheckpointStore",
    "CollectorActor",
    "CounterSnapshot",
    "DeadLetter",
    "DeadLetterSink",
    "Directive",
    "EpochSnapshot",
    "EmitterActor",
    "MailboxClosed",
    "MetaOperatorActor",
    "OperatorActor",
    "OperatorCrash",
    "PaddedOperator",
    "PoisonedTuple",
    "ProcShardConfig",
    "ProcShardResult",
    "ProcShardSystem",
    "RecoveryEvent",
    "RecoveryResult",
    "Router",
    "RuntimeConfig",
    "RuntimeMeasurements",
    "RuntimeResult",
    "SourceActor",
    "StallWatchdog",
    "SupervisionEvent",
    "SupervisionLog",
    "SupervisionPolicy",
    "SupervisorStrategy",
    "Target",
    "WatchdogReport",
    "find_blocked_cycle",
    "run_recoverable",
    "run_sharded",
    "run_topology",
    "rates_between",
]
