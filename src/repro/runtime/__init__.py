"""Threaded actor runtime — the Akka stand-in.

Bounded blocking mailboxes (:mod:`repro.runtime.mailbox`), operator /
emitter / collector / meta-operator actors
(:mod:`repro.runtime.actors`, :mod:`repro.runtime.meta`), the actor
system builder and measurement harness (:mod:`repro.runtime.system`)
and synthetic service-time padding (:mod:`repro.runtime.synthetic`).
"""

from repro.runtime.actors import (
    ActorBase,
    CollectorActor,
    EmitterActor,
    OperatorActor,
    RetireNotice,
    Router,
    ScaleDirective,
    SourceActor,
    Target,
)
from repro.runtime.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    ControllerDecision,
    plan_reconfiguration,
    wait_for_adaptation,
)
from repro.runtime.checkpoint import (
    Barrier,
    BarrierAligner,
    MigrationTicket,
    CheckpointError,
    CheckpointRestoreError,
    CheckpointSession,
    CheckpointStore,
    EpochSnapshot,
    RecoveryEvent,
    RecoveryResult,
    run_recoverable,
)
from repro.runtime.mailbox import BoundedMailbox, MailboxClosed
from repro.runtime.meta import MetaOperatorActor
from repro.runtime.procshard import (
    ChannelSender,
    ProcShardConfig,
    ProcShardResult,
    ProcShardSystem,
    run_sharded,
)
from repro.runtime.metrics import (
    ActorCounters,
    ActorRates,
    CounterSnapshot,
    RuntimeMeasurements,
    rates_between,
)
from repro.runtime.supervision import (
    ActorContext,
    BlockedActor,
    DeadLetter,
    DeadLetterSink,
    Directive,
    OperatorCrash,
    PoisonedTuple,
    StallWatchdog,
    SupervisionEvent,
    SupervisionLog,
    SupervisionPolicy,
    SupervisorStrategy,
    WatchdogReport,
    find_blocked_cycle,
)
from repro.runtime.synthetic import (
    AdjustablePaddedOperator,
    PaddedOperator,
    ServiceTimeControl,
)
from repro.runtime.system import (
    ActorSystem,
    RuntimeConfig,
    RuntimeResult,
    run_topology,
)

__all__ = [
    "ActorBase",
    "ActorContext",
    "ActorCounters",
    "ActorRates",
    "ActorSystem",
    "AdaptiveConfig",
    "AdaptiveController",
    "AdjustablePaddedOperator",
    "Barrier",
    "BarrierAligner",
    "BlockedActor",
    "BoundedMailbox",
    "ChannelSender",
    "CheckpointError",
    "CheckpointRestoreError",
    "CheckpointSession",
    "CheckpointStore",
    "CollectorActor",
    "ControllerDecision",
    "CounterSnapshot",
    "DeadLetter",
    "DeadLetterSink",
    "Directive",
    "EmitterActor",
    "EpochSnapshot",
    "MailboxClosed",
    "MetaOperatorActor",
    "MigrationTicket",
    "OperatorActor",
    "OperatorCrash",
    "PaddedOperator",
    "PoisonedTuple",
    "ProcShardConfig",
    "ProcShardResult",
    "ProcShardSystem",
    "RecoveryEvent",
    "RecoveryResult",
    "RetireNotice",
    "Router",
    "RuntimeConfig",
    "RuntimeMeasurements",
    "RuntimeResult",
    "ScaleDirective",
    "ServiceTimeControl",
    "SourceActor",
    "StallWatchdog",
    "SupervisionEvent",
    "SupervisionLog",
    "SupervisionPolicy",
    "SupervisorStrategy",
    "Target",
    "WatchdogReport",
    "find_blocked_cycle",
    "plan_reconfiguration",
    "rates_between",
    "run_recoverable",
    "run_sharded",
    "run_topology",
    "wait_for_adaptation",
]
