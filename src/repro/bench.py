"""Microbenchmark suite behind ``spinstreams bench``.

Two hot paths decide whether the tool is "fast as the hardware allows"
(ROADMAP north star): the discrete-event engine that stands in for the
paper's Akka measurements, and the steady-state solver the optimizer
search hammers.  This module measures both and writes the numbers to a
``BENCH_*.json`` baseline so future changes are gated against observable
regressions instead of anecdotes:

* **DES benchmarks** — events per second on the Figure 11 topology and
  on the largest Algorithm 5 testbed entry, the latter both free-running
  (deeply backpressured: exercises the blocking/wakeup cascade) and
  paced at its predicted throughput (pure fast-path flow);
* **solver benchmark** — the full optimizer pipeline (fission, then
  automatic fusion, then the conformance-style final prediction) over
  the ten-entry testbed, reporting how many of the requested analyses
  were answered by full fixed-point solves versus memo hits and
  incremental re-solves (:mod:`repro.core.solver`);
* **fusion benchmark** — tuples/second through a pure map→filter fused
  chain executed by the Algorithm 4 meta-operator dispatch loop versus
  the loop-compiled form (:mod:`repro.codegen.fuseloop`), both driven
  synchronously so the ratio isolates per-tuple dispatch overhead;
* **batching benchmark** — end-to-end tuples/second of the threaded
  runtime on a source→identity→sink chain, unbatched versus batched
  mailboxes (the per-message hop amortization the batching cost model
  predicts);
* **sharding benchmark** — tuples/second of a CPU-bound fissioned
  chain (:class:`~repro.runtime.synthetic.BusyOperator` replicas that
  hold the GIL) under the threaded runtime versus the multi-process
  backend at 1, 2 and 4 shards.  The recorded ``cpu_count`` keys the
  honesty of the numbers: on a single-core container the process
  backend can only show its IPC tax, never a speedup, so the ≥2x gate
  in ``benchmarks/test_microbench_procshard.py`` only arms on ≥4
  cores.

* **adaptive benchmark** — the seed-100 online re-optimization scenario
  (:mod:`repro.testing.adaptive`) run live: time from a mid-run
  service-time shift to the controller's first reconfiguration, and the
  post-shift delivered items as a fraction of an ideally pre-provisioned
  plan, side by side with the never-adapting static plan and the
  reactive threshold-elasticity baseline
  (:mod:`repro.baselines.elasticity`).

The JSON layout (``spinstreams bench -o BENCH_9.json``)::

    {
      "schema": 4,
      "quick": false,
      "des": {"fig11": {"events_per_sec": ..., "events": ...}, ...},
      "solver": {"solve_requests": ..., "full_solves": ...,
                 "solve_reduction": ..., "elapsed_sec": ...},
      "fusion": {"map_filter_dispatched": {"tuples_per_sec": ...},
                 "map_filter_loop": {"tuples_per_sec": ...},
                 "loop_speedup": ...},
      "batching": {"runtime_unbatched": {"tuples_per_sec": ...},
                   "runtime_batched_8": {"tuples_per_sec": ...},
                   "batching_speedup": ...},
      "sharding": {"cpu_count": ..., "threaded": {...},
                   "process_1": {...}, "process_2": {...},
                   "process_4": {...}, "speedup_4": ...},
      "adaptive": {"time_to_adapt_s": ...,
                   "online": {"delivered_fraction": ...},
                   "static": {...}, "reactive_baseline": {...},
                   "beats_baseline": ...}
    }

``--baseline`` compares against a committed file and exits non-zero on
a >30% throughput regression (CI's bench smoke job).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

from repro.core.autofusion import auto_fuse
from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import Edge, OperatorSpec, Topology
from repro.core.solver import analyze_cached, clear_cache
from repro.instrumentation import SOLVER
from repro.sim.network import SimulationConfig, build_engine
from repro.topology.random_gen import generate_testbed

#: Relative throughput drop that fails the regression gate.
REGRESSION_THRESHOLD = 0.30


def fig11_topology() -> Topology:
    """The paper's Figure 11 six-operator example (service times in ms:
    1.0, 1.2, 0.7, 2.0, 1.5, 0.2)."""
    operators = [
        OperatorSpec("op1", 1.0e-3),
        OperatorSpec("op2", 1.2e-3),
        OperatorSpec("op3", 0.7e-3),
        OperatorSpec("op4", 2.0e-3),
        OperatorSpec("op5", 1.5e-3),
        OperatorSpec("op6", 0.2e-3),
    ]
    edges = [
        Edge("op1", "op2", 0.7),
        Edge("op1", "op3", 0.3),
        Edge("op3", "op4", 0.35),
        Edge("op3", "op5", 0.65),
        Edge("op4", "op5", 0.5),
        Edge("op4", "op6", 0.5),
        Edge("op2", "op6", 1.0),
        Edge("op5", "op6", 1.0),
    ]
    return Topology(operators, edges, name="fig11")


def engine_events_per_second(
    topology: Topology,
    items: int,
    repeats: int = 3,
    source_rate: Optional[float] = None,
) -> Tuple[float, int]:
    """Best-of-``repeats`` event rate of one simulation run.

    Matches the methodology of ``benchmarks/test_microbench_engine.py``:
    the horizon generates ``items`` source items, the clock wraps only
    ``engine.run``, and the rate counts every station consumption.
    """
    best = 0.0
    events = 0
    for _ in range(repeats):
        config = SimulationConfig(items=items, seed=5)
        engine, rate = build_engine(topology, config,
                                    source_rate=source_rate)
        horizon = items / rate
        started = time.perf_counter()
        engine.run(until=horizon, warmup=0.0)
        elapsed = time.perf_counter() - started
        events = sum(station.consumed for station in engine.stations)
        best = max(best, events / elapsed)
    return best, events


def des_benchmarks(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run the DES microbenchmarks; returns name -> figures."""
    items = 20_000 if quick else 100_000
    testbed_items = 10_000 if quick else 50_000
    repeats = 1 if quick else 3

    largest = max(generate_testbed(10), key=len)
    paced_rate = analyze_cached(largest).throughput

    results: Dict[str, Dict[str, float]] = {}
    for name, topology, n_items, source_rate in (
        ("fig11", fig11_topology(), items, None),
        ("testbed_raw", largest, testbed_items, None),
        ("testbed_paced", largest, testbed_items, paced_rate),
    ):
        rate, events = engine_events_per_second(
            topology, n_items, repeats=repeats, source_rate=source_rate)
        results[name] = {
            "events_per_sec": round(rate, 1),
            "events": events,
            "operators": len(topology),
        }
    return results


def solver_benchmark(quick: bool = False) -> Dict[str, float]:
    """Optimizer-search solve accounting over the Algorithm 5 testbed.

    For each testbed entry, the conformance-harness workflow: predict
    the base topology, run bottleneck elimination and automatic fusion,
    then predict the transformed topology.  The counters split the
    requested analyses into full fixed-point solves, incremental
    re-solves and memo hits; ``solve_reduction`` is requests per full
    solve — the factor by which memoization shrinks the fixed-point
    work of the search (every request used to be a full solve).
    """
    entries = generate_testbed(3 if quick else 10)
    clear_cache()
    before = SOLVER.snapshot()
    started = time.perf_counter()
    for topology in entries:
        analyze_cached(topology)
        fission = eliminate_bottlenecks(topology)
        fused = auto_fuse(fission.optimized)
        analyze_cached(fused.fused)
    elapsed = time.perf_counter() - started
    delta = SOLVER.since(before)
    reduction = (delta.solve_requests / delta.full_solves
                 if delta.full_solves else float(delta.solve_requests))
    return {
        "topologies": len(entries),
        "solve_requests": delta.solve_requests,
        "full_solves": delta.full_solves,
        "incremental_solves": delta.incremental_solves,
        "cache_hits": delta.cache_hits,
        "vertices_computed": delta.vertices_computed,
        "vertices_reused": delta.vertices_reused,
        "solve_reduction": round(reduction, 2),
        "elapsed_sec": round(elapsed, 4),
    }


def _map_filter_case():
    """The fused map→filter chain both fusion backends execute."""
    from repro.core.fusion import plan_fusion

    topology = Topology(
        [
            OperatorSpec("source", 1e-4, operator_class=(
                "repro.operators.source_sink.GeneratorSource")),
            OperatorSpec("map", 1e-4,
                         operator_class="repro.operators.basic.FieldMap",
                         operator_args={"field": "value"}),
            OperatorSpec("filt", 1e-4, output_selectivity=0.5,
                         operator_class="repro.operators.basic.Filter",
                         operator_args={"threshold": 0.5}),
            OperatorSpec("sink", 1e-4, operator_class=(
                "repro.operators.source_sink.CollectingSink")),
        ],
        [Edge("source", "map"), Edge("map", "filt"), Edge("filt", "sink")],
        name="bench-map-filter",
    )
    return topology, plan_fusion(topology, ["map", "filt"])


def _fresh_members():
    from repro.operators.basic import FieldMap, Filter

    return {"map": FieldMap(field="value"), "filt": Filter(threshold=0.5)}


def meta_dispatch_tuples_per_second(items: int, repeats: int = 3) -> float:
    """Synchronous Algorithm 4 dispatch rate of the map→filter chain.

    Drives :meth:`MetaOperatorActor.handle` directly (no threads, no
    mailbox waits), so the measured cost is exactly the per-tuple
    dispatch work the loop-compiled form eliminates.
    """
    import threading

    from repro.operators.base import Record
    from repro.operators.source_sink import GeneratorSource
    from repro.runtime.actors import Router, Target
    from repro.runtime.mailbox import BoundedMailbox
    from repro.runtime.meta import MetaOperatorActor

    class _CountTarget(Target):
        def __init__(self, name: str) -> None:
            self.name = name
            self.delivered = 0

        def deliver(self, payload, origin) -> bool:
            self.delivered += 1
            return True

    _, plan = _map_filter_case()
    source = GeneratorSource(seed=5)
    records = [source.operator_function(i)[0] for i in range(items)]
    best = 0.0
    for _ in range(repeats):
        router = Router(plan.fused_name)
        router.add(1.0, _CountTarget("sink"))
        actor = MetaOperatorActor(
            plan.fused_name, plan, _fresh_members(), router,
            BoundedMailbox(capacity=4), threading.Event(),
        )
        started = time.perf_counter()
        for record in records:
            actor.handle((Record(record), "source"))
        elapsed = time.perf_counter() - started
        best = max(best, items / elapsed)
    return best


def loop_compiled_tuples_per_second(items: int, repeats: int = 3) -> float:
    """Loop-compiled execution rate of the same map→filter chain."""
    from repro.codegen.fuseloop import LoopOperator
    from repro.operators.base import Record
    from repro.operators.source_sink import GeneratorSource

    _, plan = _map_filter_case()
    source = GeneratorSource(seed=5)
    records = [source.operator_function(i)[0] for i in range(items)]
    best = 0.0
    for _ in range(repeats):
        fused_loop = LoopOperator(plan, _fresh_members()).operator_function
        sink: List[object] = []
        started = time.perf_counter()
        for record in records:
            sink.extend(fused_loop(Record(record)))
        elapsed = time.perf_counter() - started
        best = max(best, items / elapsed)
    return best


def fusion_benchmarks(quick: bool = False) -> Dict[str, object]:
    """Dispatched vs loop-compiled tuples/sec on the map→filter chain."""
    items = 20_000 if quick else 100_000
    repeats = 1 if quick else 3
    dispatched = meta_dispatch_tuples_per_second(items, repeats=repeats)
    loop = loop_compiled_tuples_per_second(items, repeats=repeats)
    return {
        "map_filter_dispatched": {"tuples_per_sec": round(dispatched, 1),
                                  "items": items},
        "map_filter_loop": {"tuples_per_sec": round(loop, 1),
                            "items": items},
        "loop_speedup": round(loop / dispatched, 2),
    }


def runtime_tuples_per_second(batch_size: int, items: int,
                              flush_timeout: float = 0.01,
                              checkpoint=None) -> float:
    """End-to-end threaded-runtime rate of a source→identity→sink chain.

    The operators are unpadded (near-zero service time), so the mailbox
    hop dominates and the measured rate responds directly to batching.
    With ``checkpoint`` (a :class:`~repro.core.graph.CheckpointConfig`)
    the run also takes aligned barrier snapshots, so the same figure
    measures the checkpointing tax on the transport.
    """
    from repro.runtime.system import ActorSystem, RuntimeConfig

    topology = Topology(
        [
            OperatorSpec("source", 1e-5, operator_class=(
                "repro.operators.source_sink.GeneratorSource"),
                operator_args={"seed": 5}),
            OperatorSpec("ident", 1e-5,
                         operator_class="repro.operators.basic.Identity"),
            OperatorSpec("sink", 1e-5, operator_class=(
                "repro.operators.source_sink.CountingSink")),
        ],
        [Edge("source", "ident"), Edge("ident", "sink")],
        name="bench-batching",
        checkpoint=checkpoint,
    )
    factories = {
        spec.name: (lambda path=spec.operator_class,
                    args=spec.operator_args: _instantiate(path, args))
        for spec in topology.operators
    }
    system = ActorSystem.build(
        topology, factories,
        config=RuntimeConfig(mailbox_capacity=64, max_items=items, seed=5,
                             watchdog=False, batch_size=batch_size,
                             batch_flush_timeout=flush_timeout),
    )
    counting = next(actor.operator for actor in system.actors
                    if actor.vertex == "sink")
    started = time.perf_counter()
    system.start()
    try:
        deadline = started + 60.0
        if system.source_actor is not None:
            system.source_actor.join(timeout=60.0)
        while counting.count < items and time.perf_counter() < deadline:
            time.sleep(0.002)
        elapsed = time.perf_counter() - started
    finally:
        system.stop()
    return counting.count / elapsed


def _instantiate(path, args):
    from repro.operators.base import instantiate_operator

    return instantiate_operator(path, args)


def batching_benchmarks(quick: bool = False) -> Dict[str, object]:
    """Unbatched vs batched threaded-runtime rates."""
    items = 10_000 if quick else 50_000
    unbatched = runtime_tuples_per_second(1, items)
    batched = runtime_tuples_per_second(8, items)
    return {
        "runtime_unbatched": {"tuples_per_sec": round(unbatched, 1),
                              "items": items},
        "runtime_batched_8": {"tuples_per_sec": round(batched, 1),
                              "items": items},
        "batching_speedup": round(batched / unbatched, 2),
    }


def busy_chain(busy_time: float, replication: int) -> Topology:
    """source → busy (CPU-bound, fissioned) → sink.

    The busy stage spins (GIL held) for ``busy_time`` per tuple, so the
    threaded runtime serializes its replicas on one core while the
    process backend spreads them across shards.
    """
    specs = [
        OperatorSpec("source", 2e-5, operator_class=(
            "repro.operators.source_sink.GeneratorSource"),
            operator_args={"seed": 5}),
        OperatorSpec("busy", busy_time, replication=replication,
                     operator_class="repro.runtime.synthetic.BusyOperator",
                     operator_args={"busy_time": busy_time}),
        OperatorSpec("sink", 1e-5, operator_class=(
            "repro.operators.source_sink.CountingSink")),
    ]
    edges = [Edge("source", "busy"), Edge("busy", "sink")]
    return Topology(specs, edges, name="bench-sharding")


def _topology_factories(topology: Topology):
    return {
        spec.name: (lambda path=spec.operator_class,
                    args=spec.operator_args: _instantiate(path, args))
        for spec in topology.operators
    }


def threaded_busy_tuples_per_second(items: int, busy_time: float,
                                    replication: int = 4) -> float:
    """Threaded-runtime rate of the CPU-bound fissioned chain."""
    from repro.runtime.system import ActorSystem, RuntimeConfig

    topology = busy_chain(busy_time, replication)
    system = ActorSystem.build(
        topology, _topology_factories(topology),
        config=RuntimeConfig(mailbox_capacity=64, max_items=items, seed=5,
                             watchdog=False, batch_size=8),
    )
    counting = next(actor.operator for actor in system.actors
                    if actor.vertex == "sink")
    started = time.perf_counter()
    system.start()
    try:
        deadline = started + 120.0
        if system.source_actor is not None:
            system.source_actor.join(timeout=120.0)
        while counting.count < items and time.perf_counter() < deadline:
            time.sleep(0.002)
        elapsed = time.perf_counter() - started
    finally:
        system.stop()
    return counting.count / elapsed


def sharded_busy_tuples_per_second(shards: int, items: int,
                                   busy_time: float,
                                   replication: int = 4) -> float:
    """Process-backend rate of the same chain at ``shards`` workers.

    Placement comes from the solver-driven default
    (:func:`repro.codegen.deployment.shard_placement`), exactly what
    ``spinstreams run --backend process`` would deploy.
    """
    from repro.runtime.procshard import ProcShardConfig, ProcShardSystem

    topology = busy_chain(busy_time, replication)
    config = ProcShardConfig(shards=shards, max_items=items, seed=5,
                             mailbox_capacity=64, batch_size=8,
                             channel_batch_size=8)
    system = ProcShardSystem.build(topology, _topology_factories(topology),
                                   config=config)
    result = system.run_to_exhaustion()
    if result.failure is not None:
        raise RuntimeError(f"sharded bench run failed: {result.failure}")
    delivered = result.sink_counts.get("sink", 0)
    return delivered / result.measurements.duration


def sharding_benchmarks(quick: bool = False) -> Dict[str, object]:
    """Threaded vs multi-process rates on the GIL-bound fissioned chain.

    ``speedup_4`` is the four-shard process rate over the threaded
    rate.  On a machine with fewer cores than shards the process
    backend cannot win — the figure then measures the IPC tax, which is
    why ``cpu_count`` is part of the record and the CI gate is
    conditional on it.
    """
    import os

    busy_time = 2e-4
    replication = 4
    items = 2_000 if quick else 8_000
    threaded = threaded_busy_tuples_per_second(items, busy_time, replication)
    results: Dict[str, object] = {
        "cpu_count": os.cpu_count() or 1,
        "busy_us": round(busy_time * 1e6),
        "items": items,
        "replication": replication,
        "threaded": {"tuples_per_sec": round(threaded, 1)},
    }
    for shards in (1, 2, 4):
        rate = sharded_busy_tuples_per_second(shards, items, busy_time,
                                              replication)
        results[f"process_{shards}"] = {"tuples_per_sec": round(rate, 1)}
    results["speedup_4"] = round(
        results["process_4"]["tuples_per_sec"] / threaded, 2)
    return results


def recovery_benchmarks(quick: bool = False) -> Dict[str, object]:
    """Checkpoint-barrier overhead and crash-recovery wall time.

    Two figures: the throughput tax of taking aligned snapshots at the
    default interval (gated at ≤15% by the recovery microbenchmark),
    and the wall-clock cost of an effectively-once run that crashes the
    sink twice and rolls back to the last complete epoch each time.
    """
    from repro.core.graph import CheckpointConfig
    from repro.testing.differential import (
        DifferentialConfig,
        check_recovery_seed,
    )

    items = 10_000 if quick else 50_000
    plain = runtime_tuples_per_second(1, items)
    checkpointed = runtime_tuples_per_second(
        1, items, checkpoint=CheckpointConfig())   # snapshot every 100 items
    overhead = 1.0 - checkpointed / plain

    started = time.perf_counter()
    report = check_recovery_seed(1, DifferentialConfig(items=300))
    elapsed = time.perf_counter() - started
    return {
        "runtime_plain": {"tuples_per_sec": round(plain, 1),
                          "items": items},
        "runtime_checkpointed": {"tuples_per_sec": round(checkpointed, 1),
                                 "items": items, "interval_items": 100},
        "checkpoint_overhead_ratio": round(overhead, 4),
        "crash_recovery": {
            "seed": 1,
            "rollbacks": report.recovery_attempts,
            "bit_equal": report.ok,
            # baseline run + crashed run incl. every rollback/replay
            "differential_wall_sec": round(elapsed, 3),
        },
    }


def adaptive_benchmarks(quick: bool = False) -> Dict[str, object]:
    """Online re-optimization vs static plan vs reactive elasticity.

    Runs the seed-100 adaptation scenario live on the elastic runtime:
    a mid-run service-time shift turns one operator into a bottleneck,
    and the adaptive controller (:mod:`repro.runtime.adaptive`) must
    re-solve and rescale.  Figures:

    * ``time_to_adapt_s`` — shift to the first applied reconfiguration;
    * ``time_to_converge_s`` — shift to the controller standing pat on
      the re-solved plan;
    * ``delivered_fraction`` — items the source pushed through over the
      whole post-shift horizon, as a fraction of what an ideally
      pre-provisioned plan would deliver (the adaptation tax: time
      spent saturated before the controller lands on the fix);
    * the same fraction for the never-adapting static plan (analytical)
      and for the classic reactive threshold controller
      (:mod:`repro.baselines.elasticity`, which pays a step-by-step
      search plus reconfiguration downtime).

    ``beats_static``/``beats_baseline`` summarize the comparison; the
    regression gate holds ``delivered_fraction`` and ``time_to_adapt_s``
    to the committed baseline.
    """
    from repro.baselines.elasticity import (
        ElasticityConfig,
        WorkloadPhase,
        run_elastic,
    )
    from repro.testing.adaptive import (
        AdaptiveScenarioConfig,
        apply_shift,
        build_scenario,
    )

    seed = 100
    scenario = AdaptiveScenarioConfig()
    sc = build_scenario(seed, scenario=scenario)
    system, controller = sc.system, sc.controller
    shifted = sc.shifted_topology
    ideal_plan = eliminate_bottlenecks(
        shifted, source_rate=sc.offered_rate, code_safety="off").optimized
    ideal = analyze_cached(ideal_plan, source_rate=sc.offered_rate).throughput
    static = analyze_cached(shifted, source_rate=sc.offered_rate).throughput

    time_to_adapt = None
    quiet = 0
    system.start()
    try:
        for _ in range(scenario.warmup_ticks):
            time.sleep(scenario.control_period)
            controller.tick()
        source = system.source_actor
        emitted_at_shift = source.counters.emitted
        apply_shift(sc)
        shift_started = time.perf_counter()
        for _ in range(scenario.max_ticks):
            time.sleep(scenario.control_period)
            decision = controller.tick()
            if decision.fired:
                quiet = 0
                if time_to_adapt is None:
                    time_to_adapt = time.perf_counter() - shift_started
            elif (controller.fired_decisions
                  and not decision.reason.startswith("cooldown")):
                quiet += 1
                if quiet >= scenario.settle_ticks:
                    break
        time_to_converge = time.perf_counter() - shift_started
        time.sleep(scenario.measure_duration)
        horizon = time.perf_counter() - shift_started
        delivered = source.counters.emitted - emitted_at_shift
    finally:
        system.stop()

    online_fraction = delivered / (ideal * horizon)
    baseline_run = run_elastic(
        shifted,
        [WorkloadPhase(rate=sc.offered_rate, duration=horizon)],
        ElasticityConfig(control_period=scenario.control_period),
        SimulationConfig(items=2_000 if quick else 10_000, seed=seed),
    )
    baseline_fraction = baseline_run.items_processed / (ideal * horizon)
    static_fraction = static / ideal
    return {
        "seed": seed,
        "shift_vertex": sc.shift_vertex,
        "shift_factor": sc.shift_factor,
        "offered_rate": round(sc.offered_rate, 1),
        "control_period_s": scenario.control_period,
        "ideal_throughput": round(ideal, 1),
        "horizon_s": round(horizon, 3),
        "time_to_adapt_s": (round(time_to_adapt, 3)
                            if time_to_adapt is not None else None),
        "time_to_converge_s": round(time_to_converge, 3),
        "reconfigurations": system.reconfigurations,
        "online": {"delivered_fraction": round(online_fraction, 4)},
        "static": {"delivered_fraction": round(static_fraction, 4)},
        "reactive_baseline": {
            "delivered_fraction": round(baseline_fraction, 4),
            "reconfigurations": baseline_run.reconfigurations,
            "downtime_s": round(baseline_run.total_downtime, 3),
        },
        "beats_static": online_fraction > static_fraction,
        "beats_baseline": online_fraction > baseline_fraction,
    }


def run_benchmarks(quick: bool = False,
                   batching_only: bool = False,
                   sharding_only: bool = False) -> Dict[str, object]:
    """The full suite; the returned dict is the ``BENCH_*.json`` payload.

    With ``batching_only`` (the ``spinstreams bench --batching`` flag)
    only the fusion and batching sections run — the transport-level
    tuple rates — skipping the DES and solver suites.  With
    ``sharding_only`` (``--sharding``) only the threaded-vs-process
    section runs.
    """
    results: Dict[str, object] = {
        "schema": 4,
        "quick": quick,
    }
    if sharding_only:
        results["sharding"] = sharding_benchmarks(quick=quick)
        return results
    if not batching_only:
        results["des"] = des_benchmarks(quick=quick)
        results["solver"] = solver_benchmark(quick=quick)
    results["fusion"] = fusion_benchmarks(quick=quick)
    results["batching"] = batching_benchmarks(quick=quick)
    if not batching_only:
        results["recovery"] = recovery_benchmarks(quick=quick)
        results["sharding"] = sharding_benchmarks(quick=quick)
        results["adaptive"] = adaptive_benchmarks(quick=quick)
    return results


def format_results(results: Dict[str, object]) -> str:
    lines: List[str] = []
    des = results.get("des")
    if des:
        lines.append("DES engine:")
        for name, figures in des.items():
            lines.append(
                f"  {name:<14} {figures['events_per_sec']:>12,.0f} "
                f"events/sec ({figures['events']:,} events, "
                f"{figures['operators']} operators)"
            )
    solver = results.get("solver")
    if solver:
        lines.append(
            f"solver ({solver['topologies']} testbed optimizations): "
            f"{solver['solve_requests']} analyses -> "
            f"{solver['full_solves']} full solves "
            f"({solver['incremental_solves']} incremental, "
            f"{solver['cache_hits']} cached) — "
            f"{solver['solve_reduction']:.1f}x fewer fixed points, "
            f"{solver['elapsed_sec'] * 1e3:.0f} ms"
        )
    fusion = results.get("fusion")
    if fusion:
        lines.append(
            "fusion (map->filter chain, synchronous): "
            f"{fusion['map_filter_dispatched']['tuples_per_sec']:,.0f} "
            "tuples/sec dispatched -> "
            f"{fusion['map_filter_loop']['tuples_per_sec']:,.0f} "
            f"loop-compiled ({fusion['loop_speedup']:.1f}x)"
        )
    batching = results.get("batching")
    if batching:
        lines.append(
            "batching (threaded runtime, 3-stage chain): "
            f"{batching['runtime_unbatched']['tuples_per_sec']:,.0f} "
            "tuples/sec unbatched -> "
            f"{batching['runtime_batched_8']['tuples_per_sec']:,.0f} "
            f"batch=8 ({batching['batching_speedup']:.2f}x)"
        )
    sharding = results.get("sharding")
    if sharding:
        lines.append(
            f"sharding (GIL-bound chain, {sharding['replication']} "
            f"replicas x {sharding['busy_us']} us, "
            f"{sharding['cpu_count']} cores): "
            f"{sharding['threaded']['tuples_per_sec']:,.0f} tuples/sec "
            "threaded -> "
            + ", ".join(
                f"{sharding[f'process_{n}']['tuples_per_sec']:,.0f} "
                f"@{n} shard{'s' if n > 1 else ''}"
                for n in (1, 2, 4))
            + f" ({sharding['speedup_4']:.2f}x at 4)"
        )
    adaptive = results.get("adaptive")
    if adaptive:
        adapt_s = adaptive["time_to_adapt_s"]
        lines.append(
            f"adaptive (seed {adaptive['seed']}, "
            f"{adaptive['shift_vertex']} x{adaptive['shift_factor']:g} "
            "shift): "
            f"adapted in {adapt_s if adapt_s is not None else 'NEVER'} s, "
            f"delivered {adaptive['online']['delivered_fraction']:.1%} of "
            "ideal vs "
            f"{adaptive['static']['delivered_fraction']:.1%} static, "
            f"{adaptive['reactive_baseline']['delivered_fraction']:.1%} "
            "reactive baseline"
        )
    recovery = results.get("recovery")
    if recovery:
        crash = recovery["crash_recovery"]
        lines.append(
            "recovery (aligned snapshots every 100 items): "
            f"{recovery['runtime_plain']['tuples_per_sec']:,.0f} "
            "tuples/sec plain -> "
            f"{recovery['runtime_checkpointed']['tuples_per_sec']:,.0f} "
            f"checkpointed "
            f"(overhead {recovery['checkpoint_overhead_ratio']:.1%}); "
            f"crash+recover differential: {crash['rollbacks']} rollbacks, "
            f"bit-equal={'yes' if crash['bit_equal'] else 'NO'}, "
            f"{crash['differential_wall_sec']:.2f} s"
        )
    return "\n".join(lines)


def compare_to_baseline(
    results: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Regressions of ``results`` against a committed baseline.

    Returns human-readable violation strings (empty = gate passes).
    Only throughput-like figures are gated; event counts may shift
    legitimately when topologies or budgets change.  DES rates are
    compared only when both runs used the same mode — quick runs use
    smaller item budgets and fewer repeats, so their events/sec are not
    commensurable with a full-mode baseline.  The solver reduction is
    deterministic and always gated.
    """
    violations: List[str] = []
    des_comparable = (results.get("quick") == baseline.get("quick")
                      and "des" in results)
    for name, base_figures in (baseline.get("des", {}).items()
                               if des_comparable else ()):
        current = results["des"].get(name)
        if current is None:
            violations.append(f"des benchmark {name!r} disappeared")
            continue
        floor = base_figures["events_per_sec"] * (1.0 - threshold)
        if current["events_per_sec"] < floor:
            violations.append(
                f"des {name}: {current['events_per_sec']:,.0f} events/sec "
                f"< floor {floor:,.0f} "
                f"(baseline {base_figures['events_per_sec']:,.0f}, "
                f"-{threshold:.0%})"
            )
    # The fusion speedup is a ratio of two same-process measurements, so
    # unlike raw rates it is comparable across modes and machines.
    base_fusion = baseline.get("fusion")
    if base_fusion is not None and "fusion" in results:
        floor = base_fusion["loop_speedup"] * (1.0 - threshold)
        current = results["fusion"]["loop_speedup"]
        if current < floor:
            violations.append(
                f"fusion loop speedup: {current:.2f}x < floor {floor:.2f}x "
                f"(baseline {base_fusion['loop_speedup']:.2f}x)"
            )
    # The sharding speedup only means "multi-core win" when both runs
    # had the cores to show one; across machines with different core
    # counts the ratios are not commensurable.
    base_sharding = baseline.get("sharding")
    current_sharding = results.get("sharding")
    if (base_sharding is not None and current_sharding is not None
            and base_sharding["cpu_count"] == current_sharding["cpu_count"]
            and base_sharding["cpu_count"] >= 4):
        floor = base_sharding["speedup_4"] * (1.0 - threshold)
        current = current_sharding["speedup_4"]
        if current < floor:
            violations.append(
                f"sharding speedup at 4 shards: {current:.2f}x < floor "
                f"{floor:.2f}x (baseline {base_sharding['speedup_4']:.2f}x)"
            )
    # Delivered-fraction and adaptation-time figures are ratios of (or
    # intervals dominated by) the same scenario's own model and tick
    # schedule, so they compare across machines like the speedups do.
    base_adaptive = baseline.get("adaptive")
    current_adaptive = results.get("adaptive")
    if base_adaptive is not None and current_adaptive is not None:
        floor = (base_adaptive["online"]["delivered_fraction"]
                 * (1.0 - threshold))
        current = current_adaptive["online"]["delivered_fraction"]
        if current < floor:
            violations.append(
                f"adaptive delivered fraction: {current:.1%} < floor "
                f"{floor:.1%} (baseline "
                f"{base_adaptive['online']['delivered_fraction']:.1%})"
            )
        base_adapt_s = base_adaptive.get("time_to_adapt_s")
        current_adapt_s = current_adaptive.get("time_to_adapt_s")
        if current_adapt_s is None:
            violations.append("adaptive controller never fired")
        elif base_adapt_s is not None:
            # Adaptation time is quantized by the control period, so a
            # loaded runner can land one or two ticks later than the
            # baseline without any regression — allow that slack on
            # top of the relative threshold.
            tick_slack = 2.0 * float(
                current_adaptive.get("control_period_s", 0.25)
            )
            ceiling = base_adapt_s * (1.0 + threshold) + tick_slack
            if current_adapt_s > ceiling:
                violations.append(
                    f"adaptive time-to-adapt: {current_adapt_s:.2f}s > "
                    f"ceiling {ceiling:.2f}s (baseline {base_adapt_s:.2f}s)"
                )
    base_solver = baseline.get("solver")
    if base_solver is not None and "solver" in results:
        floor = base_solver["solve_reduction"] * (1.0 - threshold)
        current = results["solver"]["solve_reduction"]
        if current < floor:
            violations.append(
                f"solver reduction: {current:.2f}x < floor {floor:.2f}x "
                f"(baseline {base_solver['solve_reduction']:.2f}x)"
            )
    return violations


def main(
    output: Optional[str] = None,
    baseline_path: Optional[str] = None,
    quick: bool = False,
    batching_only: bool = False,
    sharding_only: bool = False,
) -> int:
    """Entry point of ``spinstreams bench``; returns the exit code."""
    results = run_benchmarks(quick=quick, batching_only=batching_only,
                             sharding_only=sharding_only)
    print(format_results(results))
    recovery = results.get("recovery")
    if recovery and not recovery["crash_recovery"]["bit_equal"]:
        print("RECOVERY CHECK FAILED: crash+recover output diverged "
              "from the fault-free run")
        return 1
    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"results written to {output}")
    if baseline_path is not None:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        violations = compare_to_baseline(results, baseline)
        if violations:
            print("REGRESSION against "
                  f"{baseline_path} (>{REGRESSION_THRESHOLD:.0%}):")
            for violation in violations:
                print(f"  {violation}")
            return 1
        print(f"no regression against {baseline_path} "
              f"(threshold {REGRESSION_THRESHOLD:.0%})")
    return 0
