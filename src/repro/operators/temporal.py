"""Event-time and rate-control operators.

Complements the count-based windows of :mod:`repro.operators.window`
with operators keyed on an *event-time* attribute carried by the
records themselves (deterministic and simulator-friendly, unlike
wall-clock windows):

* :class:`EventTimeTumblingWindow` — aggregates over fixed-width
  event-time buckets, emitting each bucket when a later timestamp
  proves it complete (watermark-free, in-order streams);
* :class:`Debounce` — suppresses repeated values per key until they
  change by more than a threshold (classic IoT traffic reducer);
* :class:`Sampler` — deterministic 1-in-N down-sampling.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.graph import StateKind
from repro.operators.base import KeyedOperator, Operator, Record


def bucket_mean(values: Sequence[float]) -> float:
    """The default bucket aggregator (module-level, so instances stay
    picklable for the process backend — rule SS301)."""
    return math.fsum(values) / len(values)


class EventTimeTumblingWindow(Operator):
    """Tumbling windows over an event-time field (in-order streams).

    Records carry their timestamp in ``time_field``; the window of
    width ``width`` covering ``[k*width, (k+1)*width)`` is emitted as
    soon as a record with a later timestamp arrives.  Out-of-order
    records belonging to an already-emitted bucket are counted as
    *late* and dropped (the simplest, clearly-specified policy).
    """

    state = StateKind.STATEFUL

    def __init__(self, width: float, time_field: str = "sequence",
                 value_field: str = "value",
                 aggregator: Optional[Callable[[Sequence[float]], Any]] = None,
                 ) -> None:
        if width <= 0.0:
            raise ValueError(f"window width must be positive, got {width}")
        self.width = width
        self.time_field = time_field
        self.value_field = value_field
        self.aggregator = aggregator or bucket_mean
        self._bucket: Optional[int] = None
        self._values: List[float] = []
        self.late_records = 0

    def _bucket_of(self, timestamp: float) -> int:
        return int(timestamp // self.width)

    def operator_function(self, item: Record) -> List[Record]:
        timestamp = float(item.get(self.time_field, 0.0))
        bucket = self._bucket_of(timestamp)
        outputs: List[Record] = []
        if self._bucket is None:
            self._bucket = bucket
        elif bucket > self._bucket:
            if self._values:
                outputs.append(Record({
                    "window_start": self._bucket * self.width,
                    "window_end": (self._bucket + 1) * self.width,
                    "aggregate": self.aggregator(self._values),
                    "count": len(self._values),
                    "kind": "EventTimeTumblingWindow",
                }))
            self._bucket = bucket
            self._values = []
        elif bucket < self._bucket:
            self.late_records += 1
            return []
        self._values.append(float(item.get(self.value_field, 0.0)))
        return outputs

    def on_stop(self) -> None:
        # The final (incomplete) bucket is discarded: without a
        # watermark there is no proof it is complete.
        self._values = []


class Debounce(KeyedOperator):
    """Forward a keyed value only when it moved by more than ``delta``.

    The standard traffic reducer for slowly-changing sensor streams:
    per key, the first record always passes; subsequent records pass
    only if their value differs from the last *forwarded* value by more
    than the threshold.
    """

    #: Data-dependent; profiling refines it (most readings are quiet).
    output_selectivity = 0.2

    def __init__(self, delta: float = 0.5, key_field: str = "key",
                 value_field: str = "value") -> None:
        super().__init__(key_field)
        if delta < 0.0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        self.delta = delta
        self.value_field = value_field
        self._last: Dict[str, float] = {}

    def operator_function(self, item: Record) -> List[Record]:
        key = self.key_of(item) or ""
        value = float(item.get(self.value_field, 0.0))
        last = self._last.get(key)
        if last is not None and abs(value - last) <= self.delta:
            return []
        self._last[key] = value
        return [item]


class Sampler(Operator):
    """Deterministic 1-in-N down-sampling (keeps every N-th item).

    Stateful: the modulo counter is live state; replicas with private
    counters would emit a different sample of the stream.
    """

    state = StateKind.STATEFUL

    def __init__(self, every: int = 10) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.output_selectivity = 1.0 / every
        self._count = 0

    def operator_function(self, item: Any) -> List[Any]:
        self._count += 1
        if self._count % self.every == 0:
            return [item]
        return []
