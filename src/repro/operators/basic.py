"""Stateless tuple-by-tuple operators: maps, filters, flatmaps, projections.

These are the fine-grained operators the paper's testbed combines into
random topologies: they "apply transformations on a tuple-by-tuple
basis" (Section 5.1).  Each has a tunable amount of per-item CPU work so
profiled service times span the realistic range the paper reports
(hundreds of microseconds to hundreds of milliseconds).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence

from repro.operators.base import Operator, Record


def double_plus_one(value: float) -> float:
    """The default :class:`FieldMap` transformation (module-level, so
    instances stay picklable for the process backend — rule SS301)."""
    return value * 2.0 + 1.0


class ThresholdPredicate:
    """Pass items whose ``field`` is at least ``threshold``.

    A module-level callable class rather than a closure: the default
    :class:`Filter` predicate must survive pickling on the process
    backend (rule SS301), which lambdas and nested functions do not.
    """

    def __init__(self, field: str, threshold: float) -> None:
        self.field = field
        self.threshold = threshold

    def __call__(self, item: Record) -> bool:
        return float(item.get(self.field, 0.0)) >= self.threshold


def spin_work(iterations: int) -> float:
    """Burn a configurable amount of CPU; returns a dummy accumulator.

    Used to emulate the computational cost of real user functions when
    the transformation itself is cheap.  The loop is arithmetic-bound so
    its duration is stable across runs (unlike sleeping, which would not
    occupy the executor and would break the service-time model).
    """
    acc = 0.0
    for i in range(iterations):
        acc += math.sqrt(i + 1.5) * 1.000001
    return acc


class Identity(Operator):
    """Forward every item unchanged (a pure routing stage)."""

    def operator_function(self, item: Any) -> List[Any]:
        return [item]


class FieldMap(Operator):
    """Apply a function to one numeric field, writing the result back.

    ``work`` iterations of busy work emulate heavier user code.
    """

    def __init__(self, field: str, fn: Optional[Callable[[float], float]] = None,
                 work: int = 0) -> None:
        self.field = field
        self.fn = fn if fn is not None else double_plus_one
        self.work = work

    def operator_function(self, item: Record) -> List[Record]:
        if self.work:
            spin_work(self.work)
        value = float(item.get(self.field, 0.0))
        return [item.copy_with(**{self.field: self.fn(value)})]


class ArithmeticMap(Operator):
    """A numeric transformation touching several fields (a richer map)."""

    def __init__(self, fields: Sequence[str] = ("value",), work: int = 0) -> None:
        if not fields:
            raise ValueError("ArithmeticMap needs at least one field")
        self.fields = tuple(fields)
        self.work = work

    def operator_function(self, item: Record) -> List[Record]:
        if self.work:
            spin_work(self.work)
        updates = {}
        for name in self.fields:
            value = float(item.get(name, 0.0))
            updates[name] = math.sqrt(abs(value)) + math.sin(value)
        return [item.copy_with(**updates)]


class Filter(Operator):
    """Drop items failing a predicate; output selectivity below one.

    ``pass_rate`` documents the expected fraction of passing items so
    the cost model gets the right output selectivity before profiling.
    """

    def __init__(self, predicate: Optional[Callable[[Record], bool]] = None,
                 field: str = "value", threshold: float = 0.5,
                 pass_rate: float = 0.5, work: int = 0) -> None:
        if predicate is None:
            predicate = ThresholdPredicate(field, threshold)
        self.predicate = predicate
        self.work = work
        self.output_selectivity = pass_rate

    def operator_function(self, item: Record) -> List[Record]:
        if self.work:
            spin_work(self.work)
        if self.predicate(item):
            return [item]
        return []


class FlatMap(Operator):
    """Emit ``fanout`` derived items per input; output selectivity above one."""

    def __init__(self, fanout: int = 2, field: str = "value",
                 work: int = 0) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.fanout = fanout
        self.field = field
        self.work = work
        self.output_selectivity = float(fanout)

    def operator_function(self, item: Record) -> List[Record]:
        if self.work:
            spin_work(self.work)
        value = float(item.get(self.field, 0.0))
        return [
            item.copy_with(**{self.field: value + i, "fragment": i})
            for i in range(self.fanout)
        ]


class Projection(Operator):
    """Keep only a subset of the record attributes."""

    def __init__(self, fields: Sequence[str], work: int = 0) -> None:
        if not fields:
            raise ValueError("Projection needs at least one field")
        self.fields = tuple(fields)
        self.work = work

    def operator_function(self, item: Record) -> List[Record]:
        if self.work:
            spin_work(self.work)
        return [Record({name: item[name] for name in self.fields if name in item})]


class Tokenizer(Operator):
    """Split a text field into one item per token (word-count style)."""

    # Average English sentence fanout; refined by profiling on real data.
    output_selectivity = 8.0

    def __init__(self, field: str = "text", work: int = 0) -> None:
        self.field = field
        self.work = work

    def operator_function(self, item: Record) -> List[Record]:
        if self.work:
            spin_work(self.work)
        text = str(item.get(self.field, ""))
        tokens = text.split()
        return [item.copy_with(token=token, **{self.field: None})
                for token in tokens]
