"""Source and sink operators for the executable runtime.

Sources generate the input stream (the runtime paces them at the
configured rate); sinks terminate the topology, either counting items
(throughput measurement) or collecting them (testing).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.core.graph import StateKind
from repro.operators.base import Operator, Record


class GeneratorSource(Operator):
    """A source producing records from a factory function.

    The factory receives the item sequence number and a private RNG, so
    sources are reproducible under a seed.  The runtime calls
    :meth:`operator_function` with the sequence number as the "input".
    """

    def __init__(self, factory: Optional[Callable[[int, random.Random], Record]]
                 = None, seed: int = 1) -> None:
        self.factory = factory or self._default_factory
        self.rng = random.Random(seed)

    @staticmethod
    def _default_factory(sequence: int, rng: random.Random) -> Record:
        return Record({
            "sequence": sequence,
            "value": rng.random(),
            "key": f"k{rng.randrange(64)}",
        })

    def operator_function(self, item: Any) -> List[Record]:
        sequence = int(item) if isinstance(item, (int, float)) else 0
        return [self.factory(sequence, self.rng)]

    def snapshot_state(self) -> Any:
        # ``Random.getstate()`` is a cheap C-level capture; the default
        # deepcopy would recurse the 625-word Mersenne state tuple and
        # dominate the whole checkpoint interval (~180us per snapshot).
        return {"rng": self.rng.getstate()}

    def restore_state(self, snapshot: Any) -> None:
        self.rng.setstate(snapshot["rng"])


class IterableSource(Operator):
    """A source replaying a finite iterable (tests and examples).

    Stateful: the replay position is live state a replica could not
    share, so the source must stay single-instance.  The iterable is
    materialized once, which makes the source *replayable*: snapshotting
    captures the position, and restoring rewinds to it — generators and
    other one-shot iterators checkpoint correctly.
    """

    state = StateKind.STATEFUL

    def __init__(self, items: Iterable[Any]) -> None:
        self._items: List[Any] = list(items)
        self._position = 0
        self.exhausted = False

    def operator_function(self, item: Any) -> List[Any]:
        if self._position >= len(self._items):
            self.exhausted = True
            return []
        value = self._items[self._position]
        self._position += 1
        return [value]

    def snapshot_state(self) -> Any:
        # The item list is immutable after construction: only the
        # position and exhaustion flag need capturing.
        return {"position": self._position, "exhausted": self.exhausted}

    def restore_state(self, snapshot: Any) -> None:
        self._position = int(snapshot["position"])
        self.exhausted = bool(snapshot["exhausted"])


class CountingSink(Operator):
    """A sink counting items (throughput measurement endpoint).

    Stateful: the running count is live state (replicating the sink
    would split it into partial counts).
    """

    state = StateKind.STATEFUL
    output_selectivity = 0.0

    def __init__(self) -> None:
        self.count = 0

    def operator_function(self, item: Any) -> List[Any]:
        self.count += 1
        return []


class CollectingSink(Operator):
    """A sink retaining the last ``capacity`` items (for assertions).

    Stateful: the retained buffer and count are live state.
    """

    state = StateKind.STATEFUL
    output_selectivity = 0.0

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.items: List[Any] = []
        self.count = 0

    def operator_function(self, item: Any) -> List[Any]:
        self.count += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
        return []
