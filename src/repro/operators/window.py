"""Count-based sliding windows (paper Section 3.4).

A count-based sliding window of length ``w`` and slide ``s`` buffers
the last ``w`` items and triggers its computation every ``s`` new
arrivals.  The paper's testbed uses window lengths of 1000/5000/10000
tuples sliding every 1/10/50 items; the input selectivity of a windowed
operator equals its slide.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")


class CountSlidingWindow(Generic[T]):
    """A sliding window over the last ``length`` items, sliding by ``slide``.

    :meth:`push` returns the current window content (oldest first) every
    ``slide`` insertions once the window has filled up to ``length``
    (partial windows also fire, matching the usual streaming semantics
    where early results are produced before the first full window).
    """

    def __init__(self, length: int, slide: int) -> None:
        if length < 1:
            raise ValueError(f"window length must be >= 1, got {length}")
        if slide < 1:
            raise ValueError(f"window slide must be >= 1, got {slide}")
        self.length = length
        self.slide = slide
        self._buffer: Deque[T] = deque(maxlen=length)
        self._since_fire = 0

    def push(self, item: T) -> Optional[List[T]]:
        """Insert one item; returns the window content when it fires."""
        self._buffer.append(item)
        self._since_fire += 1
        if self._since_fire >= self.slide:
            self._since_fire = 0
            return list(self._buffer)
        return None

    def content(self) -> List[T]:
        """Current window content without triggering."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def full(self) -> bool:
        return len(self._buffer) == self.length
