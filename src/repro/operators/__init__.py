"""Executable operator library — the testbed's 20 real-world operators.

Stateless tuple-at-a-time transformations (:mod:`repro.operators.basic`),
count-window aggregations (:mod:`repro.operators.aggregates`), spatial
queries (:mod:`repro.operators.spatial`), windowed joins
(:mod:`repro.operators.join`) and sources/sinks
(:mod:`repro.operators.source_sink`), all built on the
:class:`repro.operators.base.Operator` abstraction (the SS2Akka analog).
"""

from repro.operators.aggregates import (
    KeyedWindowedAggregate,
    WeightedMovingAverage,
    WindowedAggregate,
    WindowedMax,
    WindowedMean,
    WindowedMin,
    WindowedQuantiles,
    WindowedStdDev,
    WindowedSum,
)
from repro.operators.base import (
    KeyedOperator,
    Operator,
    Record,
    WrappedItem,
    destination_of,
    instantiate_operator,
    load_operator_class,
    unwrap,
)
from repro.operators.basic import (
    ArithmeticMap,
    FieldMap,
    Filter,
    FlatMap,
    Identity,
    Projection,
    Tokenizer,
    spin_work,
)
from repro.operators.join import BandJoin, EquiJoin
from repro.operators.resilience import RetryingOperator, RetryPolicy
from repro.operators.source_sink import (
    CollectingSink,
    CountingSink,
    GeneratorSource,
    IterableSource,
)
from repro.operators.spatial import SkylineQuery, TopK, dominates, skyline
from repro.operators.temporal import Debounce, EventTimeTumblingWindow, Sampler
from repro.operators.window import CountSlidingWindow

__all__ = [
    "ArithmeticMap",
    "BandJoin",
    "CollectingSink",
    "CountSlidingWindow",
    "CountingSink",
    "Debounce",
    "EventTimeTumblingWindow",
    "EquiJoin",
    "FieldMap",
    "Filter",
    "FlatMap",
    "GeneratorSource",
    "Identity",
    "IterableSource",
    "KeyedOperator",
    "KeyedWindowedAggregate",
    "Operator",
    "Projection",
    "Record",
    "RetryPolicy",
    "RetryingOperator",
    "Sampler",
    "SkylineQuery",
    "Tokenizer",
    "TopK",
    "WeightedMovingAverage",
    "WindowedAggregate",
    "WindowedMax",
    "WindowedMean",
    "WindowedMin",
    "WindowedQuantiles",
    "WindowedStdDev",
    "WindowedSum",
    "WrappedItem",
    "destination_of",
    "dominates",
    "instantiate_operator",
    "load_operator_class",
    "skyline",
    "spin_work",
    "unwrap",
]
