"""Count-window aggregation operators (paper Section 5.1).

The testbed's stateful operators are "based on count-based windows for
aggregation tasks (i.e. weighted moving average, sum, max, min and
quantiles)".  Plain windowed aggregates keep one global window and are
therefore *stateful* (not replicable); their keyed variants maintain one
window per key and are *partitioned-stateful* (replicable by key).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.graph import StateKind
from repro.operators.base import KeyedOperator, Operator, Record
from repro.operators.window import CountSlidingWindow


class WindowedAggregate(Operator):
    """Base class: aggregate a numeric field over a count sliding window.

    Subclasses implement :meth:`aggregate` over the window values.  The
    input selectivity is the slide: one result every ``slide`` items.
    """

    state = StateKind.STATEFUL

    def __init__(self, length: int = 1000, slide: int = 10,
                 field: str = "value") -> None:
        self.window: CountSlidingWindow[float] = CountSlidingWindow(length, slide)
        self.field = field
        self.input_selectivity = float(slide)

    def aggregate(self, values: Sequence[float]) -> Any:
        raise NotImplementedError

    def operator_function(self, item: Record) -> List[Record]:
        fired = self.window.push(float(item.get(self.field, 0.0)))
        if fired is None:
            return []
        return [Record({
            "aggregate": self.aggregate(fired),
            "window_size": len(fired),
            "kind": type(self).__name__,
        })]


class WindowedSum(WindowedAggregate):
    """Sum of the window values."""

    def aggregate(self, values: Sequence[float]) -> float:
        return math.fsum(values)


class WindowedMax(WindowedAggregate):
    """Maximum of the window values."""

    def aggregate(self, values: Sequence[float]) -> float:
        return max(values)


class WindowedMin(WindowedAggregate):
    """Minimum of the window values."""

    def aggregate(self, values: Sequence[float]) -> float:
        return min(values)


class WindowedMean(WindowedAggregate):
    """Arithmetic mean of the window values."""

    def aggregate(self, values: Sequence[float]) -> float:
        return math.fsum(values) / len(values)


class WeightedMovingAverage(WindowedAggregate):
    """Moving average with linearly decaying weights (newest weighs most)."""

    def aggregate(self, values: Sequence[float]) -> float:
        n = len(values)
        total_weight = n * (n + 1) / 2.0
        return sum(
            value * (index + 1) for index, value in enumerate(values)
        ) / total_weight


class WindowedQuantiles(WindowedAggregate):
    """Selected quantiles of the window values (sort-based, exact)."""

    def __init__(self, length: int = 1000, slide: int = 10,
                 field: str = "value",
                 quantiles: Sequence[float] = (0.5, 0.9, 0.99)) -> None:
        super().__init__(length, slide, field)
        for q in quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
        self.quantiles = tuple(quantiles)

    def aggregate(self, values: Sequence[float]) -> Dict[str, float]:
        ordered = sorted(values)
        result = {}
        for q in self.quantiles:
            index = min(len(ordered) - 1, int(q * len(ordered)))
            result[f"q{q:g}"] = ordered[index]
        return result


class WindowedStdDev(WindowedAggregate):
    """Standard deviation of the window values."""

    def aggregate(self, values: Sequence[float]) -> float:
        mean = math.fsum(values) / len(values)
        variance = math.fsum((v - mean) ** 2 for v in values) / len(values)
        return math.sqrt(variance)


def statistic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean of the window values."""
    return math.fsum(values) / len(values)


def statistic_sum(values: Sequence[float]) -> float:
    """Sum of the window values."""
    return math.fsum(values)


def statistic_median(values: Sequence[float]) -> float:
    """Upper median of the window values (sort-based, exact)."""
    return sorted(values)[len(values) // 2]


#: Named per-window reductions usable from XML files and generated code.
#: Module-level functions, not lambdas: captured aggregators must stay
#: picklable for the process backend (rule SS301).
STATISTICS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": statistic_mean,
    "sum": statistic_sum,
    "max": max,
    "min": min,
    "median": statistic_median,
}


class KeyedWindowedAggregate(KeyedOperator):
    """Per-key count-window aggregation — partitioned-stateful.

    Maintains one sliding window per key; the fission algorithm can
    replicate it by partitioning the key space.  The reduction is named
    by ``statistic`` (see :data:`STATISTICS`) so instances can be
    described in XML files; a custom callable can still be passed as
    ``aggregator``.
    """

    def __init__(self, key_field: str = "key", length: int = 1000,
                 slide: int = 10, field: str = "value",
                 statistic: str = "mean",
                 aggregator: Optional[Callable[[Sequence[float]], Any]] = None,
                 ) -> None:
        super().__init__(key_field)
        if aggregator is None:
            try:
                aggregator = STATISTICS[statistic]
            except KeyError:
                raise ValueError(
                    f"unknown statistic {statistic!r}; "
                    f"choose from {sorted(STATISTICS)}"
                ) from None
        self.length = length
        self.slide = slide
        self.field = field
        self.statistic = statistic
        self.aggregator = aggregator
        self.input_selectivity = float(slide)
        self._windows: Dict[str, CountSlidingWindow[float]] = {}

    def operator_function(self, item: Record) -> List[Record]:
        key = self.key_of(item) or ""
        window = self._windows.get(key)
        if window is None:
            window = CountSlidingWindow(self.length, self.slide)
            self._windows[key] = window
        fired = window.push(float(item.get(self.field, 0.0)))
        if fired is None:
            return []
        return [Record({
            "key": key,
            "aggregate": self.aggregator(fired),
            "window_size": len(fired),
            "kind": type(self).__name__,
        })]
