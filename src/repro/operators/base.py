"""Executable operator abstractions (the SS2Akka analog, Section 4.2).

The original tool asks the user for one class per operator extending an
``Operator`` abstract class and overriding ``operatorFunction()``; the
runtime wraps results in ``WrappedItem`` records carrying the
destination operator.  This module is the Python equivalent: concrete
operators subclass :class:`Operator` and implement
:meth:`Operator.operator_function`, returning zero, one or many output
items per invocation.  Routing is normally decided by the topology's
edge probabilities, but an operator may pin a destination by returning
:class:`WrappedItem` instances.

Operators also expose the metadata the cost models need: state kind,
input/output selectivity, and (for partitioned-stateful operators) the
partitioning key extractor.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional

from repro.core.graph import StateKind


class Record(dict):
    """A stream item: a record of named attributes (a *tuple* in paper terms).

    A thin ``dict`` subclass so operators can read and write attributes
    naturally while remaining cheap to copy.
    """

    def copy_with(self, **updates: Any) -> "Record":
        """A copy of this record with some attributes replaced or added."""
        out = Record(self)
        out.update(updates)
        return out


@dataclass(frozen=True)
class WrappedItem:
    """An output item optionally pinned to a specific destination.

    ``destination`` is the name of a downstream operator; ``None`` lets
    the runtime route by the topology's edge probabilities.
    """

    payload: Any
    destination: Optional[str] = None


class Operator(ABC):
    """Base class of all executable operators.

    Subclasses set the class attributes describing their queueing
    behaviour and implement :meth:`operator_function`.

    Attributes
    ----------
    state:
        State kind used by the fission algorithm.
    input_selectivity:
        Average number of items consumed per output activation (e.g.
        the slide of a count-based window).
    output_selectivity:
        Average number of items produced per activation.
    """

    state: StateKind = StateKind.STATELESS
    input_selectivity: float = 1.0
    output_selectivity: float = 1.0

    @abstractmethod
    def operator_function(self, item: Any) -> List[Any]:
        """Process one input item, returning zero or more outputs.

        Outputs may be plain payloads (routed by edge probabilities) or
        :class:`WrappedItem` instances (routed to a pinned destination).
        """

    def on_start(self) -> None:
        """Hook called once before the first item (state warm-up)."""

    def on_stop(self) -> None:
        """Hook called after the last item (state teardown/flush)."""

    def snapshot_state(self) -> Any:
        """An epoch-consistent copy of this operator's live state.

        Called by the checkpoint subsystem when an aligned barrier
        reaches the operator (:mod:`repro.runtime.checkpoint`).  The
        returned blob must be independent of the operator (mutating the
        operator afterwards must not change the blob) and acceptable to
        :meth:`restore_state` of a *fresh* instance built with the same
        constructor arguments.

        The default deep-copies the instance ``__dict__``, which is
        correct for the catalog operators (counters, windows, join
        tables, seeded RNGs).  Operators holding unsnapshotable
        resources (sockets, files) must override both hooks.
        """
        return copy.deepcopy(self.__dict__)

    def restore_state(self, snapshot: Any) -> None:
        """Restore this instance to a previously snapshotted state.

        Restoration is **in-place** (the instance identity is
        preserved) so wrappers and compiled closures holding references
        to the operator keep working after a rollback.
        """
        state = copy.deepcopy(snapshot)
        self.__dict__.clear()
        self.__dict__.update(state)

    def key_of(self, item: Any) -> Optional[str]:
        """Partitioning key of an item (partitioned-stateful operators).

        The runtime's emitter actor hashes this key to choose a replica.
        Returns ``None`` for operators without a key.
        """
        return None

    @property
    def gain(self) -> float:
        """Average outputs per input: output over input selectivity."""
        return self.output_selectivity / self.input_selectivity

    def describe(self) -> str:
        """One-line description used by reports and generated code."""
        return (
            f"{type(self).__name__}(state={self.state.value}, "
            f"sel={self.input_selectivity:g}/{self.output_selectivity:g})"
        )


class KeyedOperator(Operator):
    """A partitioned-stateful operator keyed by one record attribute."""

    state = StateKind.PARTITIONED

    def __init__(self, key_field: str) -> None:
        self.key_field = key_field

    def key_of(self, item: Any) -> Optional[str]:
        try:
            return str(item[self.key_field])
        except (KeyError, TypeError):
            return None


def unwrap(output: Any) -> Any:
    """The payload of an output (transparent for non-wrapped items)."""
    if isinstance(output, WrappedItem):
        return output.payload
    return output


def destination_of(output: Any) -> Optional[str]:
    """The pinned destination of an output, if any."""
    if isinstance(output, WrappedItem):
        return output.destination
    return None


def load_operator_class(dotted_path: str) -> type:
    """Import an operator class from its dotted path.

    The runtime and the code generator use this to resolve the
    ``operator_class`` attribute of :class:`repro.core.graph.OperatorSpec`
    (the analog of the ``.class`` files given to the original tool).
    """
    module_name, _, class_name = dotted_path.rpartition(".")
    if not module_name:
        raise ImportError(f"not a dotted path: {dotted_path!r}")
    import importlib

    module = importlib.import_module(module_name)
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise ImportError(
            f"module {module_name!r} has no attribute {class_name!r}"
        ) from None
    if not (isinstance(cls, type) and issubclass(cls, Operator)):
        raise ImportError(f"{dotted_path!r} is not an Operator subclass")
    return cls


def instantiate_operator(dotted_path: str,
                         args: Optional[Mapping[str, Any]] = None) -> Operator:
    """Instantiate an operator from its dotted path and constructor args."""
    cls = load_operator_class(dotted_path)
    return cls(**dict(args or {}))
