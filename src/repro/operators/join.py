"""Join operators over count-based windows.

The paper's testbed includes "join operators performing band-join
predicates on count-based windows" (Section 5.1).  A band join matches
items whose numeric join attributes differ by at most a band width.
The operator buffers the last ``length`` items of each input stream;
every arriving item is probed against the opposite window and each
match produces one output — so the output selectivity depends on the
data and is profiled rather than declared.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.graph import StateKind
from repro.operators.base import Operator, Record


class BandJoin(Operator):
    """Band join of two streams over count-based windows.

    Items carry an ``origin`` attribute naming the upstream operator (the
    runtime stamps it); items from ``left`` and ``right`` are kept in
    separate windows.  An item whose origin matches neither is treated
    as belonging to the *left* stream, so the operator also works in
    randomly wired topologies where the upstream names are unknown.
    """

    state = StateKind.STATEFUL
    # Expected matches per probe; a profiling-time estimate refines it.
    output_selectivity = 1.0

    def __init__(self, left: Optional[str] = None, right: Optional[str] = None,
                 field: str = "value", band: float = 0.5,
                 length: int = 1000) -> None:
        if band < 0.0:
            raise ValueError(f"band width must be >= 0, got {band}")
        if length < 1:
            raise ValueError(f"window length must be >= 1, got {length}")
        self.left = left
        self.right = right
        self.field = field
        self.band = band
        self._left_window: Deque[Record] = deque(maxlen=length)
        self._right_window: Deque[Record] = deque(maxlen=length)

    def _side_of(self, item: Record) -> bool:
        """True when the item belongs to the left stream."""
        origin = item.get("origin")
        if self.right is not None and origin == self.right:
            return False
        if self.left is not None and origin == self.left:
            return True
        # Unknown origin: split deterministically so both windows fill
        # up in random topologies.  crc32 (unlike builtin hash) gives
        # the same side in every process regardless of PYTHONHASHSEED.
        return zlib.crc32(str(origin).encode("utf-8")) % 2 == 0

    def operator_function(self, item: Record) -> List[Record]:
        value = float(item.get(self.field, 0.0))
        if self._side_of(item):
            own, other = self._left_window, self._right_window
        else:
            own, other = self._right_window, self._left_window
        own.append(item)
        matches: List[Record] = []
        for candidate in other:
            other_value = float(candidate.get(self.field, 0.0))
            if abs(value - other_value) <= self.band:
                matches.append(Record({
                    "left_value": value,
                    "right_value": other_value,
                    "distance": abs(value - other_value),
                    "kind": "BandJoin",
                }))
        return matches


class EquiJoin(Operator):
    """Hash equi-join of two streams on a key over count-based windows.

    Kept per-key indexes make the probe O(matches); included to give the
    testbed a second join flavour with a different cost profile.
    """

    state = StateKind.STATEFUL
    output_selectivity = 1.0

    def __init__(self, left: Optional[str] = None, right: Optional[str] = None,
                 key_field: str = "key", length: int = 1000) -> None:
        if length < 1:
            raise ValueError(f"window length must be >= 1, got {length}")
        self.left = left
        self.right = right
        self.key_field = key_field
        self.length = length
        self._windows: Tuple[Deque[Record], Deque[Record]] = (
            deque(maxlen=length), deque(maxlen=length)
        )
        self._indexes: Tuple[Dict[str, List[Record]], Dict[str, List[Record]]] = (
            {}, {}
        )

    def _side_of(self, item: Record) -> int:
        origin = item.get("origin")
        if self.right is not None and origin == self.right:
            return 1
        if self.left is not None and origin == self.left:
            return 0
        return zlib.crc32(str(origin).encode("utf-8")) % 2

    def operator_function(self, item: Record) -> List[Record]:
        side = self._side_of(item)
        key = str(item.get(self.key_field, ""))
        window, index = self._windows[side], self._indexes[side]
        if len(window) == window.maxlen:
            evicted = window[0]
            evicted_key = str(evicted.get(self.key_field, ""))
            bucket = index.get(evicted_key)
            if bucket:
                bucket.remove(evicted)
                if not bucket:
                    del index[evicted_key]
        window.append(item)
        index.setdefault(key, []).append(item)

        matches = self._indexes[1 - side].get(key, [])
        return [
            Record({
                "key": key,
                "left": item if side == 0 else match,
                "right": match if side == 0 else item,
                "kind": "EquiJoin",
            })
            for match in matches
        ]
