"""Spatial-query operators: skyline and top-k over count windows.

The paper's testbed includes "spatial queries (i.e. skyline and top-k)"
(Section 5.1, citing the Upsortable top-k work).  Both maintain a
count-based sliding window and emit the query answer at every slide.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro.core.graph import StateKind
from repro.operators.base import Operator, Record
from repro.operators.window import CountSlidingWindow


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance: ``a`` no worse than ``b`` everywhere, better once.

    Lower is better on every dimension (the usual skyline convention for
    cost-like attributes).
    """
    at_least_one_better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            at_least_one_better = True
    return at_least_one_better


def skyline(points: Sequence[Tuple[float, ...]]) -> List[Tuple[float, ...]]:
    """The Pareto-optimal subset of ``points`` (block-nested-loop)."""
    result: List[Tuple[float, ...]] = []
    for candidate in points:
        dominated = False
        survivors: List[Tuple[float, ...]] = []
        for existing in result:
            if dominates(existing, candidate):
                dominated = True
                survivors = result
                break
            if not dominates(candidate, existing):
                survivors.append(existing)
        if not dominated:
            survivors.append(candidate)
            result = survivors
    return result


class SkylineQuery(Operator):
    """Skyline (Pareto frontier) over a count-based sliding window.

    Stateful: the window is global, so the operator cannot be replicated
    (no partitioning key gives each replica an independent frontier).
    """

    state = StateKind.STATEFUL

    def __init__(self, dimensions: Sequence[str] = ("x", "y"),
                 length: int = 1000, slide: int = 10) -> None:
        if not dimensions:
            raise ValueError("SkylineQuery needs at least one dimension")
        self.dimensions = tuple(dimensions)
        self.window: CountSlidingWindow[Tuple[float, ...]] = (
            CountSlidingWindow(length, slide)
        )
        self.input_selectivity = float(slide)

    def operator_function(self, item: Record) -> List[Record]:
        point = tuple(float(item.get(d, 0.0)) for d in self.dimensions)
        fired = self.window.push(point)
        if fired is None:
            return []
        frontier = skyline(fired)
        return [Record({
            "skyline": frontier,
            "size": len(frontier),
            "window_size": len(fired),
            "kind": "SkylineQuery",
        })]


class TopK(Operator):
    """Top-k items by a score field over a count-based sliding window."""

    state = StateKind.STATEFUL

    def __init__(self, k: int = 10, score_field: str = "value",
                 length: int = 1000, slide: int = 10) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.score_field = score_field
        self.window: CountSlidingWindow[float] = CountSlidingWindow(length, slide)
        self.input_selectivity = float(slide)

    def operator_function(self, item: Record) -> List[Record]:
        fired = self.window.push(float(item.get(self.score_field, 0.0)))
        if fired is None:
            return []
        top = heapq.nlargest(self.k, fired)
        return [Record({
            "topk": top,
            "k": self.k,
            "window_size": len(fired),
            "kind": "TopK",
        })]
