"""Transient-failure retry: exponential backoff for side-effecting edges.

Supervision (:mod:`repro.runtime.supervision`) and checkpoint recovery
(:mod:`repro.runtime.checkpoint`) handle *operator* failures — the
instance is broken, so it is restarted or the whole pipeline rolls
back.  Sources and sinks talking to the outside world fail differently:
a write bounces off a briefly unavailable endpoint and the very same
call succeeds a moment later.  Escalating such blips into crash/restart
(let alone a rollback) would be wildly disproportionate, so
:class:`RetryingOperator` absorbs them *inside* the operator call:
retry the failing invocation with exponential backoff and seeded
jitter up to a max-attempts budget, and only then let the exception
propagate to supervision.

Injected faults are deliberately *not* absorbed:
:class:`~repro.runtime.supervision.OperatorCrash` and
:class:`~repro.runtime.supervision.PoisonedTuple` pass straight
through, so chaos plans and the recovery differentials keep their
semantics under a retry wrapper.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.core.graph import StateKind
from repro.operators.base import Operator
from repro.runtime.supervision import OperatorCrash, PoisonedTuple


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how patiently.

    The delay before the ``n``-th retry (1-based) is ``backoff_base *
    backoff_factor**(n-1)``, capped at ``backoff_max``, plus uniform
    jitter of up to ``jitter`` times that delay (seeded, so runs are
    reproducible).  ``max_attempts`` counts invocations, not retries:
    ``max_attempts=3`` means one initial try plus two retries.
    """

    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.1
    #: Exception types treated as transient.  Injected faults
    #: (OperatorCrash / PoisonedTuple) are never retried regardless.
    retryable: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0.0 or self.backoff_max < 0.0:
            raise ValueError("backoff must be non-negative")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, retry_number: int, rng: random.Random) -> float:
        """Seconds to sleep before the ``retry_number``-th retry (1-based)."""
        if retry_number < 1:
            retry_number = 1
        base = self.backoff_base * (
            self.backoff_factor ** (retry_number - 1))
        base = min(base, self.backoff_max)
        return base + rng.uniform(0.0, self.jitter * base)

    def is_transient(self, error: BaseException) -> bool:
        if isinstance(error, (OperatorCrash, PoisonedTuple)):
            return False
        return isinstance(error, self.retryable)


class RetryingOperator(Operator):
    """Wrap an operator so transient failures are retried in place.

    Metadata (state kind, selectivities) mirrors the wrapped operator so
    fission/fusion analysis sees through the wrapper, exactly like the
    fault wrapper does.  The retry counters are surfaced for metrics:

    ``retries``
        Invocations that failed transiently and were re-attempted.
    ``gave_up``
        Items whose budget was exhausted (the last error propagated).
    ``recovered``
        Items that eventually succeeded after at least one retry.
    """

    #: Conservative class-level declaration for the SS2xx analyzer: the
    #: retry counters are writes reachable from ``operator_function``.
    #: Instances mirror the wrapped operator instead (``__init__``) —
    #: the counters are telemetry, and splitting telemetry across
    #: replicas never corrupts stream results.
    state = StateKind.STATEFUL

    def __init__(self, inner: Operator,
                 policy: Optional[RetryPolicy] = None,
                 seed: int = 1,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self._rng = random.Random(seed)
        self._sleep = sleep
        self.state = inner.state
        self.input_selectivity = inner.input_selectivity
        self.output_selectivity = inner.output_selectivity
        self.retries = 0
        self.gave_up = 0
        self.recovered = 0

    def metrics(self) -> Dict[str, int]:
        """The retry counters plus the configured budget, for reports."""
        return {
            "retries": self.retries,
            "gave_up": self.gave_up,
            "recovered": self.recovered,
            "max_attempts": self.policy.max_attempts,
        }

    def operator_function(self, item: Any) -> List[Any]:
        attempt = 1
        while True:
            try:
                outputs = self.inner.operator_function(item)
            except BaseException as error:
                if (not self.policy.is_transient(error)
                        or attempt >= self.policy.max_attempts):
                    if self.policy.is_transient(error):
                        self.gave_up += 1
                    raise
                self.retries += 1
                self._sleep(self.policy.delay(attempt, self._rng))
                attempt += 1
                continue
            if attempt > 1:
                self.recovered += 1
            return outputs

    def on_start(self) -> None:
        self.inner.on_start()

    def on_stop(self) -> None:
        self.inner.on_stop()

    def snapshot_state(self) -> Any:
        """Delegate to the wrapped operator.

        The retry counters are runtime telemetry, not stream state: a
        rollback must not rewind them, or the metrics would undercount
        the blips that really happened.
        """
        return self.inner.snapshot_state()

    def restore_state(self, snapshot: Any) -> None:
        self.inner.restore_state(snapshot)

    def key_of(self, item: Any) -> Optional[str]:
        return self.inner.key_of(item)

    def describe(self) -> str:
        return (f"Retrying({self.inner.describe()}, "
                f"max_attempts={self.policy.max_attempts})")
