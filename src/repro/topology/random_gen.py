"""Random-topology generation (paper Algorithm 5).

Builds the evaluation testbed: rooted acyclic topologies with 2–20
vertices, a connecting factor beta in [1, 1.2] (so graphs are sparse,
"the most common type of topologies for streaming applications"),
ZipF-distributed edge probabilities on multi-output vertices, and
real-world operators from the catalog assigned under structural
constraints (joins only on vertices with at least two input edges).

The source rate is set relative to the fastest operator (the paper uses
33% higher than the fastest operator's service rate in the fission
experiments) so bottlenecks exist and backpressure is observable in
every topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.graph import Edge, OperatorSpec, StateKind, Topology, TopologyError
from repro.topology.catalog import (
    SampledOperator,
    TESTBED_CATALOG,
    eligible_templates,
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the random testbed (defaults follow the paper).

    Beyond the paper's knobs, the config carries the hooks the
    conformance harness (:mod:`repro.testing`) uses to carve out
    regime-specific testbeds from the same seeded generator:

    * ``max_in_degree`` caps the in-degree of every vertex.  With a cap
      of 1 the generator produces random *trees* (fan-outs with ZipF
      routing, no merges), the regime where the fluid model is tight
      under head-of-line blocking; ``None`` keeps the paper's DAGs.
    * ``template_names`` restricts operator assignment to a subset of
      the catalog (e.g. stateless-only for wall-clock runtime checks).
    * ``min_service_time`` / ``max_service_time`` clamp the sampled
      service times into a band, keeping rates measurable on short
      wall-clock horizons.
    """

    min_vertices: int = 2
    max_vertices: int = 20
    beta_range: Tuple[float, float] = (1.0, 1.2)
    zipf_alpha_range: Tuple[float, float] = (1.05, 2.5)
    source_speedup: float = 1.33
    max_in_degree: Optional[int] = None
    template_names: Optional[Tuple[str, ...]] = None
    min_service_time: float = 0.0
    max_service_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_vertices < 2:
            raise TopologyError("min_vertices must be >= 2")
        if self.max_vertices < self.min_vertices:
            raise TopologyError("max_vertices must be >= min_vertices")
        if not 1.0 <= self.beta_range[0] <= self.beta_range[1]:
            raise TopologyError("beta_range must satisfy 1 <= lo <= hi")
        if self.source_speedup <= 0.0:
            raise TopologyError("source_speedup must be positive")
        if self.max_in_degree is not None and self.max_in_degree < 1:
            raise TopologyError("max_in_degree must be >= 1 when set")
        if self.template_names is not None and not self.template_names:
            raise TopologyError("template_names must be non-empty when set")
        if self.min_service_time < 0.0:
            raise TopologyError("min_service_time must be non-negative")
        if (self.max_service_time is not None
                and self.max_service_time < self.min_service_time):
            raise TopologyError(
                "max_service_time must be >= min_service_time"
            )

    def clamp_service_time(self, service_time: float) -> float:
        """Apply the service-time band to one sampled service time."""
        if service_time < self.min_service_time:
            service_time = self.min_service_time
        if (self.max_service_time is not None
                and service_time > self.max_service_time):
            service_time = self.max_service_time
        return service_time


def generate_edges(num_vertices: int, expected_edges: int,
                   rng: random.Random) -> List[Tuple[int, int]]:
    """The edge-construction phase of Algorithm 5 on integer vertices.

    Vertices are numbered 0..V-1; generated edges respect that
    (topological) numbering, so the graph is acyclic by construction.
    Vertex 0 is the source; vertices left without input edges are wired
    to the source afterwards, which can slightly exceed
    ``expected_edges`` exactly as the paper notes.
    """
    if expected_edges > num_vertices * (num_vertices - 1) // 2:
        raise TopologyError("too many edges")
    if expected_edges < num_vertices - 1:
        raise TopologyError("too few edges")

    edges: Set[Tuple[int, int]] = set()
    # Phase 1: V-1 random forward edges guaranteeing progress.
    for i in range(num_vertices - 1):
        v = rng.randint(i + 1, num_vertices - 1)
        edges.add((i, v))
    # Phase 2: top up to the expected number of edges.
    while len(edges) < expected_edges:
        u = rng.randint(0, num_vertices - 1)
        v = rng.randint(0, num_vertices - 1)
        if u < v and (u, v) not in edges:
            edges.add((u, v))
    # Phase 3: single source — attach orphan vertices to vertex 0.
    has_input = {v for _, v in edges}
    for i in range(1, num_vertices):
        if i not in has_input:
            edges.add((0, i))
    return sorted(edges)


def generate_bounded_edges(num_vertices: int, expected_edges: int,
                           rng: random.Random,
                           max_in_degree: int) -> List[Tuple[int, int]]:
    """Edge construction with a cap on every vertex's in-degree.

    Phase 1 grows a random spanning tree (each vertex picks one parent
    among its predecessors), which satisfies any cap and keeps the
    graph rooted at vertex 0.  Phase 2 tops up to ``expected_edges``
    with forward edges that respect the cap; with ``max_in_degree=1``
    nothing can be added and the result is a random tree.
    """
    if max_in_degree < 1:
        raise TopologyError("max_in_degree must be >= 1")
    edges: Set[Tuple[int, int]] = set()
    in_degree = {v: 0 for v in range(num_vertices)}
    for v in range(1, num_vertices):
        u = rng.randint(0, v - 1)
        edges.add((u, v))
        in_degree[v] += 1
    attempts = 0
    max_attempts = 20 * max(1, expected_edges)
    while len(edges) < expected_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randint(0, num_vertices - 2)
        v = rng.randint(u + 1, num_vertices - 1)
        if (u, v) in edges or in_degree[v] >= max_in_degree:
            continue
        edges.add((u, v))
        in_degree[v] += 1
    return sorted(edges)


def zipf_probabilities(count: int, alpha: float,
                       rng: random.Random) -> List[float]:
    """ZipF-distributed probabilities over ``count`` edges, shuffled.

    The paper generates the routing probabilities "using a power-law
    model (ZipF distribution) with a scaling exponent alpha > 1" —
    shuffling decides which edge receives the heavy share.
    """
    weights = [1.0 / (rank ** alpha) for rank in range(1, count + 1)]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    rng.shuffle(probabilities)
    return probabilities


class RandomTopologyGenerator:
    """Deterministic generator of testbed topologies.

    ``RandomTopologyGenerator(seed).generate()`` produces one topology;
    :func:`generate_testbed` produces the 50-topology testbed.
    """

    def __init__(self, seed: int = 1,
                 config: Optional[GeneratorConfig] = None) -> None:
        self.rng = random.Random(seed)
        self.config = config or GeneratorConfig()

    def generate(self, name: Optional[str] = None) -> Topology:
        cfg = self.config
        rng = self.rng
        num_vertices = rng.randint(cfg.min_vertices, cfg.max_vertices)
        beta = rng.uniform(*cfg.beta_range)
        expected_edges = max(num_vertices - 1,
                             round((num_vertices - 1) * beta))
        max_edges = num_vertices * (num_vertices - 1) // 2
        expected_edges = min(expected_edges, max_edges)
        if cfg.max_in_degree is not None:
            int_edges = generate_bounded_edges(num_vertices, expected_edges,
                                               rng, cfg.max_in_degree)
        else:
            int_edges = generate_edges(num_vertices, expected_edges, rng)

        in_degree = {i: 0 for i in range(num_vertices)}
        for _, v in int_edges:
            in_degree[v] += 1

        # Assign operators under structural constraints.
        sampled: Dict[int, SampledOperator] = {}
        names: Dict[int, str] = {0: "op0_source"}
        for vertex in range(1, num_vertices):
            templates = eligible_templates(in_degree[vertex])
            if cfg.template_names is not None:
                allowed = set(cfg.template_names)
                templates = [t for t in templates if t.name in allowed]
                if not templates:
                    raise TopologyError(
                        f"no eligible template among {sorted(allowed)} for a "
                        f"vertex with in-degree {in_degree[vertex]}"
                    )
            weights = [t.weight for t in templates]
            template = rng.choices(templates, weights=weights, k=1)[0]
            sampled[vertex] = template.sample(rng)
            names[vertex] = f"op{vertex}_{template.name}"

        # The source is 33% faster than the fastest operator so that
        # bottlenecks exist and backpressure shapes the steady state.
        fastest = min(cfg.clamp_service_time(op.service_time)
                      for op in sampled.values())
        source_service_time = fastest / cfg.source_speedup

        specs: List[OperatorSpec] = [
            OperatorSpec(
                name=names[0],
                service_time=source_service_time,
                state=StateKind.STATELESS,
                operator_class="repro.operators.source_sink.GeneratorSource",
            )
        ]
        for vertex in range(1, num_vertices):
            op = sampled[vertex]
            specs.append(OperatorSpec(
                name=names[vertex],
                service_time=cfg.clamp_service_time(op.service_time),
                state=op.state,
                input_selectivity=op.input_selectivity,
                output_selectivity=op.output_selectivity,
                keys=op.keys,
                operator_class=op.operator_class,
                operator_args=dict(op.operator_args),
            ))

        # Edge probabilities: ZipF across each vertex's out-edges.
        out_edges: Dict[int, List[int]] = {}
        for u, v in int_edges:
            out_edges.setdefault(u, []).append(v)
        edges: List[Edge] = []
        for u, targets in sorted(out_edges.items()):
            if len(targets) == 1:
                edges.append(Edge(names[u], names[targets[0]], 1.0))
                continue
            alpha = rng.uniform(*cfg.zipf_alpha_range)
            probabilities = zipf_probabilities(len(targets), alpha, rng)
            # Normalize away float drift so Topology validation passes.
            correction = 1.0 / sum(probabilities)
            for target, probability in zip(targets, probabilities):
                edges.append(Edge(names[u], names[target],
                                  probability * correction))

        return Topology(specs, edges, name=name or f"random-{id(self):x}")


def generate_testbed(count: int = 50, seed: int = 42,
                     config: Optional[GeneratorConfig] = None
                     ) -> List[Topology]:
    """The paper's testbed: ``count`` random topologies (default 50)."""
    topologies = []
    for index in range(count):
        generator = RandomTopologyGenerator(seed=seed + index, config=config)
        topologies.append(generator.generate(name=f"testbed-{index + 1:02d}"))
    return topologies
