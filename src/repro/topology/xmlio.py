"""XML topology descriptions (the tool's input formalism, Section 4.1).

The original tool imports "the structure of the topology and the
profiling measurements expressed in an XML file", with tags for the
operators (name, service rate with time unit, implementation class,
state type, key distributions) and for the edges (probability,
selectivities).  This module parses and serializes that format::

    <topology name="example">
      <operator name="src" class="repro.operators.source_sink.GeneratorSource"
                type="stateless" service-time="1.0" time-unit="ms"/>
      <operator name="agg" class="repro.operators.aggregates.KeyedWindowedAggregate"
                type="partitioned-stateful" service-time="4.0" time-unit="ms"
                input-selectivity="10">
        <arg name="length" value="1000" type="int"/>
        <arg name="slide" value="10" type="int"/>
        <keys>
          <key id="k0" probability="0.5"/>
          <key id="k1" probability="0.5"/>
        </keys>
      </operator>
      <edge from="src" to="agg" probability="1.0"/>
    </topology>

Key distributions can also live in a side CSV file (``<keys file="..."/>``
with ``key,probability`` rows), as the paper's "file with their
probability distributions".
"""

from __future__ import annotations

import csv
import io
import os
import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Optional, Union

from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)

#: Multipliers from XML time units to seconds.
TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}

_ARG_PARSERS = {
    "int": int,
    "float": float,
    "str": str,
    "bool": lambda text: text.strip().lower() in ("1", "true", "yes"),
}


class XmlFormatError(TopologyError):
    """Raised on malformed topology XML."""


def parse_topology(source: Union[str, "os.PathLike[str]"],
                   base_dir: Optional[str] = None) -> Topology:
    """Parse a topology from an XML file path or an XML string.

    ``base_dir`` resolves relative ``<keys file="..."/>`` references;
    it defaults to the XML file's directory (or the current directory
    when parsing from a string).
    """
    text, directory = _read_source(source, base_dir)
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"invalid XML: {exc}") from exc
    if root.tag != "topology":
        raise XmlFormatError(f"root element must be <topology>, got <{root.tag}>")

    name = root.get("name", "topology")
    operators: List[OperatorSpec] = []
    edges: List[Edge] = []
    for child in root:
        if child.tag == "operator":
            operators.append(_parse_operator(child, directory))
        elif child.tag == "edge":
            edges.append(_parse_edge(child))
        else:
            raise XmlFormatError(f"unexpected element <{child.tag}>")
    return Topology(operators, edges, name=name)


def _read_source(source: Union[str, "os.PathLike[str]"],
                 base_dir: Optional[str]) -> tuple:
    text = str(source)
    if "<" in text:  # raw XML string
        return text, base_dir or "."
    path = os.fspath(source)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return (handle.read(),
                    base_dir or os.path.dirname(os.path.abspath(path)))
    except FileNotFoundError:
        raise XmlFormatError(
            f"topology file not found: {path!r} "
            f"(resolved to {os.path.abspath(path)!r}); relative paths are "
            "resolved against the current working directory — pass an "
            "absolute path, or an XML string to parse inline"
        ) from None


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise XmlFormatError(
            f"<{element.tag}> is missing required attribute {attribute!r}"
        )
    return value


def _parse_operator(element: ET.Element, directory: str) -> OperatorSpec:
    name = _require(element, "name")
    unit = element.get("time-unit", "ms")
    try:
        scale = TIME_UNITS[unit]
    except KeyError:
        raise XmlFormatError(f"operator {name!r}: unknown time unit {unit!r}")
    raw_service_time = _require(element, "service-time")
    try:
        service_time = float(raw_service_time) * scale
    except ValueError:
        raise XmlFormatError(f"operator {name!r}: bad service-time") from None

    state = StateKind.parse(element.get("type", "stateless"))

    args: Dict[str, Any] = {}
    keys: Optional[KeyDistribution] = None
    for child in element:
        if child.tag == "arg":
            arg_name = _require(child, "name")
            arg_type = child.get("type", "str")
            parser = _ARG_PARSERS.get(arg_type)
            if parser is None:
                raise XmlFormatError(
                    f"operator {name!r}: unknown arg type {arg_type!r}"
                )
            raw_value = _require(child, "value")
            try:
                args[arg_name] = parser(raw_value)
            except ValueError:
                raise XmlFormatError(
                    f"operator {name!r}: bad value for arg {arg_name!r}"
                ) from None
        elif child.tag == "keys":
            keys = _parse_keys(child, name, directory)
        else:
            raise XmlFormatError(
                f"operator {name!r}: unexpected element <{child.tag}>"
            )

    return OperatorSpec(
        name=name,
        service_time=service_time,
        state=state,
        input_selectivity=float(element.get("input-selectivity", "1")),
        output_selectivity=float(element.get("output-selectivity", "1")),
        replication=int(element.get("replication", "1")),
        keys=keys,
        operator_class=element.get("class"),
        operator_args=args,
    )


def _parse_keys(element: ET.Element, operator: str,
                directory: str) -> KeyDistribution:
    file_ref = element.get("file")
    if file_ref is not None:
        path = file_ref if os.path.isabs(file_ref) else os.path.join(
            directory, file_ref)
        return read_key_distribution(path)
    frequencies: Dict[str, float] = {}
    for child in element:
        if child.tag != "key":
            raise XmlFormatError(
                f"operator {operator!r}: unexpected element <{child.tag}> "
                "inside <keys>"
            )
        key_id = _require(child, "id")
        raw_probability = _require(child, "probability")
        try:
            frequencies[key_id] = float(raw_probability)
        except ValueError:
            raise XmlFormatError(
                f"operator {operator!r}: bad probability for key {key_id!r}"
            ) from None
    if not frequencies:
        raise XmlFormatError(
            f"operator {operator!r}: <keys> needs a file or <key> children"
        )
    return KeyDistribution(frequencies)


def _parse_edge(element: ET.Element) -> Edge:
    try:
        probability = float(element.get("probability", "1"))
    except ValueError:
        raise XmlFormatError("edge: bad probability") from None
    return Edge(
        source=_require(element, "from"),
        target=_require(element, "to"),
        probability=probability,
    )


def read_key_distribution(path: str) -> KeyDistribution:
    """Read a ``key,probability`` CSV file into a distribution."""
    frequencies: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#"):
                continue
            if len(row) != 2:
                raise XmlFormatError(f"{path}: expected 'key,probability' rows")
            frequencies[row[0].strip()] = float(row[1])
    if not frequencies:
        raise XmlFormatError(f"{path}: empty key distribution")
    return KeyDistribution(frequencies)


def write_key_distribution(keys: KeyDistribution, path: str) -> None:
    """Write a distribution as a ``key,probability`` CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        for key, frequency in keys.items():
            writer.writerow([key, f"{frequency!r}"])


def topology_to_xml(topology: Topology, time_unit: str = "ms") -> str:
    """Serialize a topology to an XML string (inline key distributions)."""
    try:
        scale = TIME_UNITS[time_unit]
    except KeyError:
        raise XmlFormatError(f"unknown time unit {time_unit!r}") from None
    root = ET.Element("topology", {"name": topology.name})
    for spec in topology.operators:
        attributes = {
            "name": spec.name,
            "type": spec.state.value,
            "service-time": repr(spec.service_time / scale),
            "time-unit": time_unit,
        }
        if spec.operator_class:
            attributes["class"] = spec.operator_class
        if spec.input_selectivity != 1.0:
            attributes["input-selectivity"] = repr(spec.input_selectivity)
        if spec.output_selectivity != 1.0:
            attributes["output-selectivity"] = repr(spec.output_selectivity)
        if spec.replication != 1:
            attributes["replication"] = str(spec.replication)
        op_el = ET.SubElement(root, "operator", attributes)
        for arg_name in sorted(spec.operator_args):
            value = spec.operator_args[arg_name]
            arg_type = {int: "int", float: "float", bool: "bool"}.get(
                type(value), "str")
            ET.SubElement(op_el, "arg", {
                "name": arg_name,
                "value": repr(value) if arg_type == "float" else str(value),
                "type": arg_type,
            })
        if spec.keys is not None:
            keys_el = ET.SubElement(op_el, "keys")
            for key, frequency in spec.keys.items():
                ET.SubElement(keys_el, "key", {
                    "id": key, "probability": repr(frequency),
                })
    for edge in topology.edges:
        ET.SubElement(root, "edge", {
            "from": edge.source,
            "to": edge.target,
            "probability": repr(edge.probability),
        })
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def write_topology(topology: Topology, path: str,
                   time_unit: str = "ms") -> None:
    """Serialize a topology to an XML file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(topology_to_xml(topology, time_unit=time_unit))
