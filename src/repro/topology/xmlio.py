"""XML topology descriptions (the tool's input formalism, Section 4.1).

The original tool imports "the structure of the topology and the
profiling measurements expressed in an XML file", with tags for the
operators (name, service rate with time unit, implementation class,
state type, key distributions) and for the edges (probability,
selectivities).  This module parses and serializes that format::

    <topology name="example">
      <operator name="src" class="repro.operators.source_sink.GeneratorSource"
                type="stateless" service-time="1.0" time-unit="ms"/>
      <operator name="agg" class="repro.operators.aggregates.KeyedWindowedAggregate"
                type="partitioned-stateful" service-time="4.0" time-unit="ms"
                input-selectivity="10">
        <arg name="length" value="1000" type="int"/>
        <arg name="slide" value="10" type="int"/>
        <keys>
          <key id="k0" probability="0.5"/>
          <key id="k1" probability="0.5"/>
        </keys>
      </operator>
      <edge from="src" to="agg" probability="1.0" buffer-capacity="64"/>
    </topology>

Key distributions can also live in a side CSV file (``<keys file="..."/>``
with ``key,probability`` rows), as the paper's "file with their
probability distributions".

Parsing happens in two phases.  :func:`parse_draft` performs the
*lexical* phase: it reads the XML into an unvalidated
:class:`TopologyDraft` — malformed markup, missing attributes and
unparseable numbers raise :class:`XmlFormatError`, but *semantic*
violations (probability mass, negative service times, unreachable
operators) are preserved verbatim so the static verifier
(:mod:`repro.analysis.graph`) can report them as diagnostics instead of
dying on the first one.  :func:`parse_topology` adds the semantic
phase: with ``strict=True`` (the default) out-edge probability masses
that do not sum to one and non-positive buffer capacities are rejected
with an :class:`XmlFormatError` naming the offending operator or edge;
``strict=False`` is the escape hatch used by the shrinker — the mass is
renormalized and invalid capacities dropped, mirroring what
:func:`repro.testing.shrink.shrink` does to keep reduced topologies
well-formed.
"""

from __future__ import annotations

import csv
import math
import os
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.core.graph import (
    BatchConfig,
    CheckpointConfig,
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)

#: Multipliers from XML time units to seconds.
TIME_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}

_ARG_PARSERS = {
    "int": int,
    "float": float,
    "str": str,
    "bool": lambda text: text.strip().lower() in ("1", "true", "yes"),
}


class XmlFormatError(TopologyError):
    """Raised on malformed topology XML."""


# ----------------------------------------------------------------------
# the unvalidated draft layer
# ----------------------------------------------------------------------
@dataclass
class DraftOperator:
    """One ``<operator>`` element, lexically parsed but unvalidated."""

    name: str
    service_time: float
    state: StateKind = StateKind.STATELESS
    input_selectivity: float = 1.0
    output_selectivity: float = 1.0
    replication: int = 1
    key_frequencies: Optional[Dict[str, float]] = None
    operator_class: Optional[str] = None
    operator_args: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> OperatorSpec:
        """The validated :class:`OperatorSpec` of this draft operator."""
        keys: Optional[KeyDistribution] = None
        if self.key_frequencies is not None:
            try:
                keys = KeyDistribution(dict(self.key_frequencies))
            except TopologyError as exc:
                raise XmlFormatError(
                    f"operator {self.name!r}: {exc}") from None
        return OperatorSpec(
            name=self.name,
            service_time=self.service_time,
            state=self.state,
            input_selectivity=self.input_selectivity,
            output_selectivity=self.output_selectivity,
            replication=self.replication,
            keys=keys,
            operator_class=self.operator_class,
            operator_args=self.operator_args,
        )


@dataclass
class DraftEdge:
    """One ``<edge>`` element, lexically parsed but unvalidated."""

    source: str
    target: str
    probability: float = 1.0
    capacity: Optional[int] = None
    batch_size: Optional[int] = None
    batch_flush_timeout: Optional[float] = None

    @property
    def label(self) -> str:
        return f"{self.source}->{self.target}"

    def build(self) -> Edge:
        batch: Optional[BatchConfig] = None
        if self.batch_size is not None:
            batch = BatchConfig(
                size=self.batch_size,
                flush_timeout=(self.batch_flush_timeout
                               if self.batch_flush_timeout is not None
                               else BatchConfig().flush_timeout),
            )
        return Edge(self.source, self.target, self.probability,
                    capacity=self.capacity, batch=batch)


@dataclass
class DraftCheckpoint:
    """One ``<checkpoint>`` element, lexically parsed but unvalidated.

    ``snapshot_overhead`` is already scaled to seconds (the element
    takes the same ``time-unit`` attribute as operators).
    """

    interval_items: int
    retained: int = 2
    snapshot_overhead: float = 0.0

    def build(self) -> CheckpointConfig:
        try:
            return CheckpointConfig(
                interval_items=self.interval_items,
                retained=self.retained,
                snapshot_overhead=self.snapshot_overhead,
            )
        except TopologyError as exc:
            raise XmlFormatError(f"checkpoint: {exc}") from None

    @property
    def valid(self) -> bool:
        return (self.interval_items >= 1 and self.retained >= 1
                and self.snapshot_overhead >= 0.0)


@dataclass
class TopologyDraft:
    """A lexically parsed topology before any semantic validation.

    The static verifier consumes drafts directly so it can report
    *every* violation of a broken file; :meth:`build` performs the
    semantic phase and produces the validated :class:`Topology`.
    """

    name: str
    operators: List[DraftOperator]
    edges: List[DraftEdge]
    #: Source file of the draft, when parsed from one (diagnostics).
    path: Optional[str] = None
    #: Optional ``<checkpoint>`` element of the topology.
    checkpoint: Optional[DraftCheckpoint] = None
    #: Optional ``<latency-budget>`` element, already scaled to seconds.
    latency_budget: Optional[float] = None

    def operator_names(self) -> List[str]:
        return [op.name for op in self.operators]

    def out_mass(self) -> Dict[str, float]:
        """Total out-edge probability per operator (operators with
        out-edges only)."""
        totals: Dict[str, float] = {}
        for edge in self.edges:
            totals[edge.source] = totals.get(edge.source, 0.0) + edge.probability
        return totals

    def build(self, strict: bool = True) -> Topology:
        """Validate the draft into a :class:`Topology`.

        With ``strict=True`` a probability mass that does not sum to
        one or a non-positive buffer capacity raises
        :class:`XmlFormatError` naming the operator or edge.  With
        ``strict=False`` masses are renormalized and invalid
        capacities dropped (the shrinker's escape hatch).
        """
        edges = list(self.edges)
        known = set(self.operator_names())
        totals = self.out_mass()
        if strict:
            for name in sorted(totals):
                if name not in known:
                    continue  # dangling edge; Topology reports it
                total = totals[name]
                if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-6):
                    raise XmlFormatError(
                        f"operator {name!r}: output edge probabilities sum "
                        f"to {total}, expected 1 (pass strict=False to "
                        "renormalize)"
                    )
            for edge in edges:
                if edge.capacity is not None and edge.capacity < 1:
                    raise XmlFormatError(
                        f"edge {edge.label!r}: buffer-capacity must be "
                        f">= 1, got {edge.capacity} (pass strict=False to "
                        "drop it)"
                    )
                if edge.batch_size is not None and edge.batch_size < 1:
                    raise XmlFormatError(
                        f"edge {edge.label!r}: batch-size must be >= 1, "
                        f"got {edge.batch_size} (pass strict=False to "
                        "drop it)"
                    )
                if (edge.batch_flush_timeout is not None
                        and edge.batch_flush_timeout <= 0.0):
                    raise XmlFormatError(
                        f"edge {edge.label!r}: batch-flush-timeout must be "
                        f"positive, got {edge.batch_flush_timeout} (pass "
                        "strict=False to drop it)"
                    )
        else:
            normalized: List[DraftEdge] = []
            for edge in edges:
                probability = edge.probability
                total = totals.get(edge.source, 0.0)
                if (total > 0.0 and math.isfinite(total)
                        and not math.isclose(total, 1.0, rel_tol=0.0,
                                             abs_tol=1e-6)):
                    probability = probability / total
                capacity = edge.capacity
                if capacity is not None and capacity < 1:
                    capacity = None
                batch_size = edge.batch_size
                if batch_size is not None and batch_size < 1:
                    batch_size = None
                batch_timeout = edge.batch_flush_timeout
                if batch_timeout is not None and batch_timeout <= 0.0:
                    batch_timeout = None
                normalized.append(DraftEdge(edge.source, edge.target,
                                            probability, capacity,
                                            batch_size, batch_timeout))
            edges = normalized
        checkpoint: Optional[CheckpointConfig] = None
        if self.checkpoint is not None:
            if strict:
                checkpoint = self.checkpoint.build()
            elif self.checkpoint.valid:
                checkpoint = self.checkpoint.build()
            # invalid + non-strict: checkpointing is an optimization
            # annotation, so the shrinker escape hatch just drops it
        latency_budget = self.latency_budget
        if latency_budget is not None and latency_budget <= 0.0:
            if strict:
                raise XmlFormatError(
                    f"latency-budget must be positive, got {latency_budget} "
                    "(pass strict=False to drop it)")
            latency_budget = None
        return Topology(
            [op.build() for op in self.operators],
            [edge.build() for edge in edges],
            name=self.name,
            checkpoint=checkpoint,
            latency_budget=latency_budget,
        )


def parse_topology(source: Union[str, "os.PathLike[str]"],
                   base_dir: Optional[str] = None,
                   strict: bool = True) -> Topology:
    """Parse a topology from an XML file path or an XML string.

    ``base_dir`` resolves relative ``<keys file="..."/>`` references;
    it defaults to the XML file's directory (or the current directory
    when parsing from a string).  ``strict`` controls the semantic
    phase: out-edge probability masses that do not sum to one and
    non-positive buffer capacities are rejected by default, while
    ``strict=False`` renormalizes and drops them respectively.
    """
    return parse_draft(source, base_dir).build(strict=strict)


def parse_draft(source: Union[str, "os.PathLike[str]"],
                base_dir: Optional[str] = None) -> TopologyDraft:
    """Lexically parse topology XML into an unvalidated draft.

    Raises :class:`XmlFormatError` only for markup-level problems
    (invalid XML, missing attributes, unparseable numbers); semantic
    violations survive into the draft for the static verifier.
    """
    text, directory = _read_source(source, base_dir)
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"invalid XML: {exc}") from exc
    if root.tag != "topology":
        raise XmlFormatError(f"root element must be <topology>, got <{root.tag}>")

    name = root.get("name", "topology")
    operators: List[DraftOperator] = []
    edges: List[DraftEdge] = []
    checkpoint: Optional[DraftCheckpoint] = None
    latency_budget: Optional[float] = None
    for child in root:
        if child.tag == "operator":
            operators.append(_parse_operator(child, directory))
        elif child.tag == "edge":
            edges.append(_parse_edge(child))
        elif child.tag == "checkpoint":
            if checkpoint is not None:
                raise XmlFormatError(
                    "at most one <checkpoint> element is allowed")
            checkpoint = _parse_checkpoint(child)
        elif child.tag == "latency-budget":
            if latency_budget is not None:
                raise XmlFormatError(
                    "at most one <latency-budget> element is allowed")
            latency_budget = _parse_latency_budget(child)
        else:
            raise XmlFormatError(f"unexpected element <{child.tag}>")
    path = None
    if "<" not in str(source):
        path = os.fspath(source)
    return TopologyDraft(name=name, operators=operators, edges=edges,
                         path=path, checkpoint=checkpoint,
                         latency_budget=latency_budget)


def _read_source(source: Union[str, "os.PathLike[str]"],
                 base_dir: Optional[str]) -> tuple:
    text = str(source)
    if "<" in text:  # raw XML string
        return text, base_dir or "."
    path = os.fspath(source)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return (handle.read(),
                    base_dir or os.path.dirname(os.path.abspath(path)))
    except FileNotFoundError:
        raise XmlFormatError(
            f"topology file not found: {path!r} "
            f"(resolved to {os.path.abspath(path)!r}); relative paths are "
            "resolved against the current working directory — pass an "
            "absolute path, or an XML string to parse inline"
        ) from None


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise XmlFormatError(
            f"<{element.tag}> is missing required attribute {attribute!r}"
        )
    return value


def _parse_operator(element: ET.Element, directory: str) -> DraftOperator:
    name = _require(element, "name")
    unit = element.get("time-unit", "ms")
    try:
        scale = TIME_UNITS[unit]
    except KeyError:
        raise XmlFormatError(f"operator {name!r}: unknown time unit {unit!r}")
    raw_service_time = _require(element, "service-time")
    try:
        service_time = float(raw_service_time) * scale
    except ValueError:
        raise XmlFormatError(f"operator {name!r}: bad service-time") from None

    try:
        state = StateKind.parse(element.get("type", "stateless"))
    except TopologyError as exc:
        raise XmlFormatError(f"operator {name!r}: {exc}") from None

    args: Dict[str, Any] = {}
    keys: Optional[Dict[str, float]] = None
    for child in element:
        if child.tag == "arg":
            arg_name = _require(child, "name")
            arg_type = child.get("type", "str")
            parser = _ARG_PARSERS.get(arg_type)
            if parser is None:
                raise XmlFormatError(
                    f"operator {name!r}: unknown arg type {arg_type!r}"
                )
            raw_value = _require(child, "value")
            try:
                args[arg_name] = parser(raw_value)
            except ValueError:
                raise XmlFormatError(
                    f"operator {name!r}: bad value for arg {arg_name!r}"
                ) from None
        elif child.tag == "keys":
            keys = _parse_keys(child, name, directory)
        else:
            raise XmlFormatError(
                f"operator {name!r}: unexpected element <{child.tag}>"
            )

    try:
        input_selectivity = float(element.get("input-selectivity", "1"))
        output_selectivity = float(element.get("output-selectivity", "1"))
    except ValueError:
        raise XmlFormatError(f"operator {name!r}: bad selectivity") from None
    try:
        replication = int(element.get("replication", "1"))
    except ValueError:
        raise XmlFormatError(f"operator {name!r}: bad replication") from None

    return DraftOperator(
        name=name,
        service_time=service_time,
        state=state,
        input_selectivity=input_selectivity,
        output_selectivity=output_selectivity,
        replication=replication,
        key_frequencies=keys,
        operator_class=element.get("class"),
        operator_args=args,
    )


def _parse_keys(element: ET.Element, operator: str,
                directory: str) -> Dict[str, float]:
    file_ref = element.get("file")
    if file_ref is not None:
        path = file_ref if os.path.isabs(file_ref) else os.path.join(
            directory, file_ref)
        return _read_key_frequencies(path)
    frequencies: Dict[str, float] = {}
    for child in element:
        if child.tag != "key":
            raise XmlFormatError(
                f"operator {operator!r}: unexpected element <{child.tag}> "
                "inside <keys>"
            )
        key_id = _require(child, "id")
        raw_probability = _require(child, "probability")
        try:
            frequencies[key_id] = float(raw_probability)
        except ValueError:
            raise XmlFormatError(
                f"operator {operator!r}: bad probability for key {key_id!r}"
            ) from None
    if not frequencies:
        raise XmlFormatError(
            f"operator {operator!r}: <keys> needs a file or <key> children"
        )
    return frequencies


def _parse_checkpoint(element: ET.Element) -> DraftCheckpoint:
    raw_interval = _require(element, "interval-items")
    try:
        interval_items = int(raw_interval)
    except ValueError:
        raise XmlFormatError("checkpoint: bad interval-items") from None
    try:
        retained = int(element.get("retained", "2"))
    except ValueError:
        raise XmlFormatError("checkpoint: bad retained") from None
    unit = element.get("time-unit", "ms")
    try:
        scale = TIME_UNITS[unit]
    except KeyError:
        raise XmlFormatError(
            f"checkpoint: unknown time unit {unit!r}") from None
    try:
        snapshot_overhead = float(
            element.get("snapshot-overhead", "0")) * scale
    except ValueError:
        raise XmlFormatError("checkpoint: bad snapshot-overhead") from None
    return DraftCheckpoint(interval_items=interval_items,
                           retained=retained,
                           snapshot_overhead=snapshot_overhead)


def _parse_latency_budget(element: ET.Element) -> float:
    """``<latency-budget value="250" time-unit="ms"/>`` in seconds."""
    raw_value = _require(element, "value")
    unit = element.get("time-unit", "ms")
    try:
        scale = TIME_UNITS[unit]
    except KeyError:
        raise XmlFormatError(
            f"latency-budget: unknown time unit {unit!r}") from None
    try:
        return float(raw_value) * scale
    except ValueError:
        raise XmlFormatError("latency-budget: bad value") from None


def _parse_edge(element: ET.Element) -> DraftEdge:
    source = _require(element, "from")
    target = _require(element, "to")
    try:
        probability = float(element.get("probability", "1"))
    except ValueError:
        raise XmlFormatError(
            f"edge {source!r}->{target!r}: bad probability") from None
    capacity: Optional[int] = None
    raw_capacity = element.get("buffer-capacity")
    if raw_capacity is not None:
        try:
            capacity = int(raw_capacity)
        except ValueError:
            raise XmlFormatError(
                f"edge {source!r}->{target!r}: bad buffer-capacity"
            ) from None
    batch_size: Optional[int] = None
    raw_batch = element.get("batch-size")
    if raw_batch is not None:
        try:
            batch_size = int(raw_batch)
        except ValueError:
            raise XmlFormatError(
                f"edge {source!r}->{target!r}: bad batch-size"
            ) from None
    batch_flush_timeout: Optional[float] = None
    raw_flush = element.get("batch-flush-timeout")
    if raw_flush is not None:
        try:
            batch_flush_timeout = float(raw_flush)
        except ValueError:
            raise XmlFormatError(
                f"edge {source!r}->{target!r}: bad batch-flush-timeout"
            ) from None
    return DraftEdge(source=source, target=target, probability=probability,
                     capacity=capacity, batch_size=batch_size,
                     batch_flush_timeout=batch_flush_timeout)


def _read_key_frequencies(path: str) -> Dict[str, float]:
    frequencies: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#"):
                continue
            if len(row) != 2:
                raise XmlFormatError(f"{path}: expected 'key,probability' rows")
            frequencies[row[0].strip()] = float(row[1])
    if not frequencies:
        raise XmlFormatError(f"{path}: empty key distribution")
    return frequencies


def read_key_distribution(path: str) -> KeyDistribution:
    """Read a ``key,probability`` CSV file into a distribution."""
    return KeyDistribution(_read_key_frequencies(path))


def write_key_distribution(keys: KeyDistribution, path: str) -> None:
    """Write a distribution as a ``key,probability`` CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        for key, frequency in keys.items():
            writer.writerow([key, f"{frequency!r}"])


def topology_to_xml(topology: Topology, time_unit: str = "ms") -> str:
    """Serialize a topology to an XML string (inline key distributions)."""
    try:
        scale = TIME_UNITS[time_unit]
    except KeyError:
        raise XmlFormatError(f"unknown time unit {time_unit!r}") from None
    root = ET.Element("topology", {"name": topology.name})
    if topology.checkpoint is not None:
        ET.SubElement(root, "checkpoint", {
            "interval-items": str(topology.checkpoint.interval_items),
            "retained": str(topology.checkpoint.retained),
            "snapshot-overhead": repr(
                topology.checkpoint.snapshot_overhead / scale),
            "time-unit": time_unit,
        })
    if topology.latency_budget is not None:
        ET.SubElement(root, "latency-budget", {
            "value": repr(topology.latency_budget / scale),
            "time-unit": time_unit,
        })
    for spec in topology.operators:
        attributes = {
            "name": spec.name,
            "type": spec.state.value,
            "service-time": repr(spec.service_time / scale),
            "time-unit": time_unit,
        }
        if spec.operator_class:
            attributes["class"] = spec.operator_class
        if spec.input_selectivity != 1.0:
            attributes["input-selectivity"] = repr(spec.input_selectivity)
        if spec.output_selectivity != 1.0:
            attributes["output-selectivity"] = repr(spec.output_selectivity)
        if spec.replication != 1:
            attributes["replication"] = str(spec.replication)
        op_el = ET.SubElement(root, "operator", attributes)
        for arg_name in sorted(spec.operator_args):
            value = spec.operator_args[arg_name]
            arg_type = {int: "int", float: "float", bool: "bool"}.get(
                type(value), "str")
            ET.SubElement(op_el, "arg", {
                "name": arg_name,
                "value": repr(value) if arg_type == "float" else str(value),
                "type": arg_type,
            })
        if spec.keys is not None:
            keys_el = ET.SubElement(op_el, "keys")
            for key, frequency in spec.keys.items():
                ET.SubElement(keys_el, "key", {
                    "id": key, "probability": repr(frequency),
                })
    for edge in topology.edges:
        attributes = {
            "from": edge.source,
            "to": edge.target,
            "probability": repr(edge.probability),
        }
        if edge.capacity is not None:
            attributes["buffer-capacity"] = str(edge.capacity)
        if edge.batch is not None:
            attributes["batch-size"] = str(edge.batch.size)
            attributes["batch-flush-timeout"] = repr(edge.batch.flush_timeout)
        ET.SubElement(root, "edge", attributes)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def write_topology(topology: Topology, path: str,
                   time_unit: str = "ms") -> None:
    """Serialize a topology to an XML file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(topology_to_xml(topology, time_unit=time_unit))
