"""Topology tooling: random generation, XML I/O and DOT rendering."""

from repro.topology.catalog import (
    OperatorTemplate,
    SampledOperator,
    TESTBED_CATALOG,
    eligible_templates,
    templates_by_name,
)
from repro.topology.dot import topology_to_dot
from repro.topology.random_gen import (
    GeneratorConfig,
    RandomTopologyGenerator,
    generate_edges,
    generate_testbed,
    zipf_probabilities,
)
from repro.topology.xmlio import (
    XmlFormatError,
    parse_topology,
    read_key_distribution,
    topology_to_xml,
    write_key_distribution,
    write_topology,
)

__all__ = [
    "GeneratorConfig",
    "OperatorTemplate",
    "RandomTopologyGenerator",
    "SampledOperator",
    "TESTBED_CATALOG",
    "XmlFormatError",
    "eligible_templates",
    "generate_edges",
    "generate_testbed",
    "parse_topology",
    "read_key_distribution",
    "templates_by_name",
    "topology_to_dot",
    "topology_to_xml",
    "write_key_distribution",
    "write_topology",
    "zipf_probabilities",
]
