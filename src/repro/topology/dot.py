"""Graphviz DOT rendering of topologies and analyses.

The original tool displays topologies in a GUI; this module produces
DOT text the user can render with Graphviz instead.  Operators are
colored by state kind and annotated with service times; when a
steady-state analysis is supplied, utilization factors and bottleneck
highlighting are added — the textual equivalent of the GUI's feedback.
"""

from __future__ import annotations

from typing import Optional

from repro.core.graph import StateKind, Topology
from repro.core.steady_state import SteadyStateResult

_STATE_COLORS = {
    StateKind.STATELESS: "#cfe8ff",
    StateKind.PARTITIONED: "#ffe9b3",
    StateKind.STATEFUL: "#ffc4c4",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def topology_to_dot(topology: Topology,
                    analysis: Optional[SteadyStateResult] = None) -> str:
    """Render a topology (optionally annotated with an analysis) as DOT."""
    lines = [
        f'digraph "{_escape(topology.name)}" {{',
        "  rankdir=LR;",
        '  node [shape=box, style="rounded,filled", fontname="Helvetica"];',
    ]
    for spec in topology.operators:
        label = f"{spec.name}\\nT={spec.service_time * 1e3:.3g} ms"
        if spec.replication > 1:
            label += f"\\nn={spec.replication}"
        if spec.input_selectivity != 1.0 or spec.output_selectivity != 1.0:
            label += (f"\\nsel={spec.input_selectivity:g}/"
                      f"{spec.output_selectivity:g}")
        color = _STATE_COLORS[spec.state]
        extras = ""
        if analysis is not None:
            rho = analysis.utilization(spec.name)
            label += f"\\nrho={rho:.2f}"
            if spec.name in analysis.bottlenecks:
                extras = ', color="red", penwidth=2'
        lines.append(
            f'  "{_escape(spec.name)}" [label="{label}", '
            f'fillcolor="{color}"{extras}];'
        )
    for edge in topology.edges:
        attributes = ""
        if edge.probability != 1.0:
            attributes = f' [label="{edge.probability:.3g}"]'
        lines.append(
            f'  "{_escape(edge.source)}" -> "{_escape(edge.target)}"'
            f"{attributes};"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
