"""Catalog of the testbed's real-world operators (paper Section 5.1).

The paper's evaluation builds 50 random topologies out of "20 different
real-world operators": stateless filters and maps, count-window
aggregations (weighted moving average, sum, max, min, quantiles),
spatial queries (skyline, top-k) and windowed band joins.  This module
is that catalog: each :class:`OperatorTemplate` couples an executable
operator class with the queueing metadata the generator needs (state
kind, selectivity behaviour, realistic service-time range, structural
constraints such as "joins need at least two input edges").

Service-time ranges follow the paper: "the average service time per
input tuple is in the fastest case of some hundreds of microseconds
while in the worst case it is up to few hundreds of milliseconds".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.graph import KeyDistribution, StateKind

#: Window lengths and slides used by the paper's testbed (Section 5.1).
WINDOW_LENGTHS = (1000, 5000, 10000)
WINDOW_SLIDES = (1, 10, 50)


@dataclass(frozen=True)
class SampledOperator:
    """One concrete operator drawn from a template."""

    template: "OperatorTemplate"
    service_time: float
    input_selectivity: float
    output_selectivity: float
    operator_args: Mapping[str, Any]
    keys: Optional[KeyDistribution]

    @property
    def state(self) -> StateKind:
        return self.template.state

    @property
    def operator_class(self) -> str:
        return self.template.operator_class


@dataclass(frozen=True)
class OperatorTemplate:
    """A catalog entry: an operator kind the generator can instantiate.

    Attributes
    ----------
    name:
        Short identifier used in generated operator names.
    operator_class:
        Dotted path of the executable implementation.
    state:
        State kind driving the fission strategy.
    service_range:
        ``(min, max)`` mean service time in seconds; sampled
        log-uniformly so both microsecond and millisecond operators are
        common.
    sampler:
        Draws the per-instance parameters (window sizes, selectivities,
        constructor arguments, key distributions).
    min_inputs:
        Structural constraint: minimum in-degree of the vertex this
        template can be assigned to (2 for joins).
    weight:
        Relative selection weight in random assignment.  The paper's
        testbed reaches the ideal throughput in 43/50 topologies after
        fission, which requires most operators to be replicable: its
        "stateful flag" is the exception, not the rule.  Stateless and
        partitioned-stateful templates therefore carry higher weights
        than the purely stateful ones.
    """

    name: str
    operator_class: str
    state: StateKind
    service_range: Tuple[float, float]
    sampler: Callable[["OperatorTemplate", random.Random], SampledOperator]
    min_inputs: int = 1
    weight: float = 1.0

    def sample(self, rng: random.Random) -> SampledOperator:
        return self.sampler(self, rng)


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def _sample_service(template: OperatorTemplate, rng: random.Random) -> float:
    low, high = template.service_range
    return _log_uniform(rng, low, high)


def _window_params(rng: random.Random) -> Tuple[int, int]:
    return rng.choice(WINDOW_LENGTHS), rng.choice(WINDOW_SLIDES)


def _random_keys(rng: random.Random) -> KeyDistribution:
    """A random key population with ZipF frequencies (random skew).

    Cardinalities and skews are in the range where greedy partitioning
    balances well — the paper reports that "in all cases,
    partitioned-stateful operators have been successfully parallelized
    when they were bottlenecks" (Section 5.3).
    """
    num_keys = rng.randrange(1000, 5000)
    alpha = rng.uniform(0.1, 0.5)
    weights = [1.0 / ((rank + 1) ** alpha) for rank in range(num_keys)]
    total = sum(weights)
    return KeyDistribution(
        {f"k{i}": w / total for i, w in enumerate(weights)}
    )


def _plain(template: OperatorTemplate, rng: random.Random,
           **args: Any) -> SampledOperator:
    return SampledOperator(
        template=template,
        service_time=_sample_service(template, rng),
        input_selectivity=1.0,
        output_selectivity=1.0,
        operator_args=args,
        keys=None,
    )


def _sample_stateless(template: OperatorTemplate,
                      rng: random.Random) -> SampledOperator:
    return _plain(template, rng)


def _sample_filter(template: OperatorTemplate,
                   rng: random.Random) -> SampledOperator:
    pass_rate = rng.uniform(0.3, 0.9)
    threshold = 1.0 - pass_rate  # value ~ U(0,1): P(value >= thr) = pass_rate
    sampled = _plain(template, rng, threshold=threshold, pass_rate=pass_rate)
    return SampledOperator(
        template=template,
        service_time=sampled.service_time,
        input_selectivity=1.0,
        output_selectivity=pass_rate,
        operator_args=sampled.operator_args,
        keys=None,
    )


def _sample_flatmap(template: OperatorTemplate,
                    rng: random.Random) -> SampledOperator:
    fanout = rng.choice((2, 3, 4))
    return SampledOperator(
        template=template,
        service_time=_sample_service(template, rng),
        input_selectivity=1.0,
        output_selectivity=float(fanout),
        operator_args={"fanout": fanout},
        keys=None,
    )


def _sample_windowed(template: OperatorTemplate,
                     rng: random.Random) -> SampledOperator:
    length, slide = _window_params(rng)
    return SampledOperator(
        template=template,
        service_time=_sample_service(template, rng),
        input_selectivity=float(slide),
        output_selectivity=1.0,
        operator_args={"length": length, "slide": slide},
        keys=None,
    )


def _make_keyed_sampler(statistic: str):
    def sample(template: OperatorTemplate,
               rng: random.Random) -> SampledOperator:
        length, slide = _window_params(rng)
        return SampledOperator(
            template=template,
            service_time=_sample_service(template, rng),
            input_selectivity=float(slide),
            output_selectivity=1.0,
            operator_args={"length": length, "slide": slide,
                           "statistic": statistic, "key_field": "key"},
            keys=_random_keys(rng),
        )
    return sample


def _sample_join(template: OperatorTemplate,
                 rng: random.Random) -> SampledOperator:
    length = rng.choice(WINDOW_LENGTHS)
    band = rng.uniform(0.001, 0.01)
    # Matches per probe against a window of uniform values in [0, 1]:
    # roughly 2 * band * length, the profiled output selectivity.
    selectivity = max(0.1, min(4.0, 2.0 * band * length))
    return SampledOperator(
        template=template,
        service_time=_sample_service(template, rng),
        input_selectivity=1.0,
        output_selectivity=selectivity,
        operator_args={"band": band, "length": length},
        keys=None,
    )


_OPS = "repro.operators"

#: The testbed catalog: 20 operator kinds mirroring the paper's mix.
TESTBED_CATALOG: Tuple[OperatorTemplate, ...] = (
    # -- stateless tuple-at-a-time operators -------------------------------
    OperatorTemplate("identity", f"{_OPS}.basic.Identity",
                     StateKind.STATELESS, (2e-4, 2e-3), _sample_stateless,
                     weight=3.0),
    OperatorTemplate("field_map", f"{_OPS}.basic.FieldMap",
                     StateKind.STATELESS, (3e-4, 5e-3), _sample_stateless,
                     weight=3.0),
    OperatorTemplate("arithmetic_map", f"{_OPS}.basic.ArithmeticMap",
                     StateKind.STATELESS, (5e-4, 2e-2), _sample_stateless,
                     weight=3.0),
    OperatorTemplate("projection", f"{_OPS}.basic.Projection",
                     StateKind.STATELESS, (2e-4, 2e-3), _sample_stateless,
                     weight=3.0),
    OperatorTemplate("filter_low", f"{_OPS}.basic.Filter",
                     StateKind.STATELESS, (2e-4, 3e-3), _sample_filter,
                     weight=3.0),
    OperatorTemplate("filter_high", f"{_OPS}.basic.Filter",
                     StateKind.STATELESS, (5e-4, 1e-2), _sample_filter,
                     weight=2.0),
    OperatorTemplate("flatmap", f"{_OPS}.basic.FlatMap",
                     StateKind.STATELESS, (5e-4, 5e-3), _sample_flatmap,
                     weight=1.5),
    OperatorTemplate("tokenizer", f"{_OPS}.basic.Tokenizer",
                     StateKind.STATELESS, (5e-4, 5e-3), _sample_stateless,
                     weight=2.0),
    # -- partitioned-stateful keyed aggregations ---------------------------
    OperatorTemplate("keyed_mean", f"{_OPS}.aggregates.KeyedWindowedAggregate",
                     StateKind.PARTITIONED, (1e-3, 5e-2),
                     _make_keyed_sampler("mean"), weight=2.5),
    OperatorTemplate("keyed_sum", f"{_OPS}.aggregates.KeyedWindowedAggregate",
                     StateKind.PARTITIONED, (1e-3, 5e-2),
                     _make_keyed_sampler("sum"), weight=2.5),
    OperatorTemplate("keyed_max", f"{_OPS}.aggregates.KeyedWindowedAggregate",
                     StateKind.PARTITIONED, (1e-3, 3e-2),
                     _make_keyed_sampler("max"), weight=2.0),
    OperatorTemplate("keyed_median", f"{_OPS}.aggregates.KeyedWindowedAggregate",
                     StateKind.PARTITIONED, (2e-3, 1e-1),
                     _make_keyed_sampler("median"), weight=2.0),
    # -- stateful windowed aggregations (not replicable) --------------------
    OperatorTemplate("wma", f"{_OPS}.aggregates.WeightedMovingAverage",
                     StateKind.STATEFUL, (1e-3, 5e-2), _sample_windowed,
                     weight=0.08),
    OperatorTemplate("win_sum", f"{_OPS}.aggregates.WindowedSum",
                     StateKind.STATEFUL, (5e-4, 2e-2), _sample_windowed,
                     weight=0.08),
    OperatorTemplate("win_max", f"{_OPS}.aggregates.WindowedMax",
                     StateKind.STATEFUL, (5e-4, 2e-2), _sample_windowed,
                     weight=0.08),
    OperatorTemplate("win_min", f"{_OPS}.aggregates.WindowedMin",
                     StateKind.STATEFUL, (5e-4, 2e-2), _sample_windowed,
                     weight=0.08),
    OperatorTemplate("quantiles", f"{_OPS}.aggregates.WindowedQuantiles",
                     StateKind.STATEFUL, (2e-3, 2e-1), _sample_windowed,
                     weight=0.06),
    # -- spatial queries -----------------------------------------------------
    OperatorTemplate("skyline", f"{_OPS}.spatial.SkylineQuery",
                     StateKind.STATEFUL, (2e-3, 2e-1), _sample_windowed,
                     weight=0.06),
    OperatorTemplate("topk", f"{_OPS}.spatial.TopK",
                     StateKind.STATEFUL, (1e-3, 1e-1), _sample_windowed,
                     weight=0.06),
    # -- windowed joins (need two input streams) -----------------------------
    OperatorTemplate("band_join", f"{_OPS}.join.BandJoin",
                     StateKind.STATEFUL, (1e-3, 1e-1), _sample_join,
                     min_inputs=2, weight=0.25),
)


def templates_by_name() -> Dict[str, OperatorTemplate]:
    return {template.name: template for template in TESTBED_CATALOG}


def eligible_templates(in_degree: int) -> List[OperatorTemplate]:
    """Templates assignable to a vertex with the given in-degree."""
    return [t for t in TESTBED_CATALOG if t.min_inputs <= in_degree]
